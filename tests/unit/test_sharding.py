"""Unit tests for the sharding subsystem: router, config and metrics."""

import pytest

from repro.common.config import DeploymentConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.common.types import RequestId
from repro.execution.state_machine import Operation
from repro.sharding import ShardRouter, ShardedConfig, ShardedMetrics


class TestShardRouter:
    def test_every_key_in_range(self):
        router = ShardRouter(4)
        for i in range(500):
            assert 0 <= router.shard_of(f"user{i}") < 4

    def test_routing_is_stable_across_instances(self):
        a, b = ShardRouter(8, seed=3), ShardRouter(8, seed=3)
        keys = [f"user{i}" for i in range(300)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_seed_varies_the_partition(self):
        keys = [f"user{i}" for i in range(300)]
        a = [ShardRouter(4, seed=0).shard_of(k) for k in keys]
        b = [ShardRouter(4, seed=1).shard_of(k) for k in keys]
        assert a != b

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1)
        assert all(router.shard_of(f"user{i}") == 0 for i in range(100))

    def test_partition_preserves_operations_and_order(self):
        router = ShardRouter(3)
        operations = [Operation(action="read", key=f"user{i}") for i in range(60)]
        by_shard = router.partition(operations)
        assert sum(len(ops) for ops in by_shard.values()) == len(operations)
        for shard, ops in by_shard.items():
            assert all(router.shard_of(op.key) == shard for op in ops)
            # Per-shard order matches the original stream order.
            expected = [op for op in operations if router.shard_of(op.key) == shard]
            assert ops == expected

    def test_shard_of_operation_matches_shard_of_key(self):
        router = ShardRouter(5)
        op = Operation(action="write", key="user42", value="v")
        assert router.shard_of_operation(op) == router.shard_of("user42")

    def test_distribution_counts_all_keys(self):
        router = ShardRouter(4)
        counts = router.distribution(f"user{i}" for i in range(400))
        assert sorted(counts) == [0, 1, 2, 3]
        assert sum(counts.values()) == 400

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)


class TestShardedConfig:
    def test_defaults_validate(self):
        ShardedConfig(base=DeploymentConfig()).validate()

    def test_bad_scaleout_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedConfig(base=DeploymentConfig(), num_shards=0).validate()
        with pytest.raises(ConfigurationError):
            ShardedConfig(base=DeploymentConfig(), num_clients=0).validate()

    def test_num_clients_defaults_to_base_workload(self):
        base = DeploymentConfig(workload=WorkloadConfig(num_clients=200))
        assert ShardedConfig(base=base).effective_num_clients == 200
        assert ShardedConfig(base=base, num_clients=32).effective_num_clients == 32

    def test_shard_configs_get_distinct_seeds(self):
        config = ShardedConfig(base=DeploymentConfig(), num_shards=3)
        seeds = {config.shard_config(s).experiment.seed for s in range(3)}
        assert len(seeds) == 3

    def test_shard_config_out_of_range_rejected(self):
        config = ShardedConfig(base=DeploymentConfig(), num_shards=2)
        with pytest.raises(ConfigurationError):
            config.shard_config(2)

    def test_with_shards_is_functional(self):
        config = ShardedConfig(base=DeploymentConfig(), num_shards=2)
        assert config.with_shards(4).num_shards == 4
        assert config.num_shards == 2


class TestShardedMetrics:
    def record(self, collector, number, start, end, operations=1):
        request_id = RequestId(client="c", number=number)
        collector.record_submission("c", request_id, start, operations)
        collector.record_completion("c", request_id, start, end, operations)

    def test_per_shard_and_global_counts(self):
        metrics = ShardedMetrics(num_shards=2)
        self.record(metrics.shard_collectors[0], 1, 0.0, 100.0)
        self.record(metrics.shard_collectors[1], 1, 0.0, 120.0)
        self.record(metrics.global_collector, 1, 0.0, 120.0, operations=2)
        assert metrics.completed_count == 1
        assert metrics.shard_completed_count(0) == 1
        assert metrics.shard_completed_count(1) == 1

    def test_summary_reports_imbalance(self):
        metrics = ShardedMetrics(num_shards=2)
        for i in range(1, 4):  # shard 0 serves three ops, shard 1 serves one
            self.record(metrics.shard_collectors[0], i, 0.0, 1000.0 * i)
        self.record(metrics.shard_collectors[1], 1, 0.0, 1000.0)
        summary = metrics.summarise(warmup_fraction=0.0)
        assert summary.num_shards == 2
        assert summary.imbalance == pytest.approx(3 / 2)
        assert summary.aggregate_throughput_tx_s == pytest.approx(
            sum(m.throughput_tx_s for m in summary.shard_metrics))

    def test_as_row_exposes_per_shard_columns(self):
        metrics = ShardedMetrics(num_shards=2)
        self.record(metrics.shard_collectors[0], 1, 0.0, 100.0)
        self.record(metrics.shard_collectors[1], 1, 0.0, 100.0)
        self.record(metrics.global_collector, 1, 0.0, 100.0)
        row = metrics.summarise(warmup_fraction=0.0).as_row()
        assert row["shards"] == 2
        assert "shard0_tx_s" in row and "shard1_tx_s" in row
        assert "aggregate_throughput_tx_s" in row and "imbalance" in row

    def test_empty_run_summarises_to_zero(self):
        summary = ShardedMetrics(num_shards=3).summarise()
        assert summary.imbalance == 0.0
        assert summary.aggregate_throughput_tx_s == 0.0
