"""Unit tests for the sharding subsystem: router, config and metrics."""

import pytest

from repro.common.config import DeploymentConfig, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.common.types import RequestId
from repro.execution.state_machine import Operation
from repro.sharding import ShardRouter, ShardedConfig, ShardedMetrics


class TestShardRouter:
    def test_every_key_in_range(self):
        router = ShardRouter(4)
        for i in range(500):
            assert 0 <= router.shard_of(f"user{i}") < 4

    def test_routing_is_stable_across_instances(self):
        a, b = ShardRouter(8, seed=3), ShardRouter(8, seed=3)
        keys = [f"user{i}" for i in range(300)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_seed_varies_the_partition(self):
        keys = [f"user{i}" for i in range(300)]
        a = [ShardRouter(4, seed=0).shard_of(k) for k in keys]
        b = [ShardRouter(4, seed=1).shard_of(k) for k in keys]
        assert a != b

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1)
        assert all(router.shard_of(f"user{i}") == 0 for i in range(100))

    def test_partition_preserves_operations_and_order(self):
        router = ShardRouter(3)
        operations = [Operation(action="read", key=f"user{i}") for i in range(60)]
        by_shard = router.partition(operations)
        assert sum(len(ops) for ops in by_shard.values()) == len(operations)
        for shard, ops in by_shard.items():
            assert all(router.shard_of(op.key) == shard for op in ops)
            # Per-shard order matches the original stream order.
            expected = [op for op in operations if router.shard_of(op.key) == shard]
            assert ops == expected

    def test_shard_of_operation_matches_shard_of_key(self):
        router = ShardRouter(5)
        op = Operation(action="write", key="user42", value="v")
        assert router.shard_of_operation(op) == router.shard_of("user42")

    def test_distribution_counts_all_keys(self):
        router = ShardRouter(4)
        counts = router.distribution(f"user{i}" for i in range(400))
        assert sorted(counts) == [0, 1, 2, 3]
        assert sum(counts.values()) == 400

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)


class TestShardedConfig:
    def test_defaults_validate(self):
        ShardedConfig(base=DeploymentConfig()).validate()

    def test_bad_scaleout_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedConfig(base=DeploymentConfig(), num_shards=0).validate()
        with pytest.raises(ConfigurationError):
            ShardedConfig(base=DeploymentConfig(), num_clients=0).validate()

    def test_num_clients_defaults_to_base_workload(self):
        base = DeploymentConfig(workload=WorkloadConfig(num_clients=200))
        assert ShardedConfig(base=base).effective_num_clients == 200
        assert ShardedConfig(base=base, num_clients=32).effective_num_clients == 32

    def test_shard_configs_get_distinct_seeds(self):
        config = ShardedConfig(base=DeploymentConfig(), num_shards=3)
        seeds = {config.shard_config(s).experiment.seed for s in range(3)}
        assert len(seeds) == 3

    def test_shard_config_out_of_range_rejected(self):
        config = ShardedConfig(base=DeploymentConfig(), num_shards=2)
        with pytest.raises(ConfigurationError):
            config.shard_config(2)

    def test_with_shards_is_functional(self):
        config = ShardedConfig(base=DeploymentConfig(), num_shards=2)
        assert config.with_shards(4).num_shards == 4
        assert config.num_shards == 2


class TestShardedMetrics:
    def record(self, collector, number, start, end, operations=1):
        request_id = RequestId(client="c", number=number)
        collector.record_submission("c", request_id, start, operations)
        collector.record_completion("c", request_id, start, end, operations)

    def test_per_shard_and_global_counts(self):
        metrics = ShardedMetrics(num_shards=2)
        self.record(metrics.shard_collectors[0], 1, 0.0, 100.0)
        self.record(metrics.shard_collectors[1], 1, 0.0, 120.0)
        self.record(metrics.global_collector, 1, 0.0, 120.0, operations=2)
        assert metrics.completed_count == 1
        assert metrics.shard_completed_count(0) == 1
        assert metrics.shard_completed_count(1) == 1

    def test_summary_reports_imbalance(self):
        metrics = ShardedMetrics(num_shards=2)
        for i in range(1, 4):  # shard 0 serves three ops, shard 1 serves one
            self.record(metrics.shard_collectors[0], i, 0.0, 1000.0 * i)
        self.record(metrics.shard_collectors[1], 1, 0.0, 1000.0)
        summary = metrics.summarise(warmup_fraction=0.0)
        assert summary.num_shards == 2
        assert summary.imbalance == pytest.approx(3 / 2)
        assert summary.aggregate_throughput_tx_s == pytest.approx(
            sum(m.throughput_tx_s for m in summary.shard_metrics))

    def test_as_row_exposes_per_shard_columns(self):
        metrics = ShardedMetrics(num_shards=2)
        self.record(metrics.shard_collectors[0], 1, 0.0, 100.0)
        self.record(metrics.shard_collectors[1], 1, 0.0, 100.0)
        self.record(metrics.global_collector, 1, 0.0, 100.0)
        row = metrics.summarise(warmup_fraction=0.0).as_row()
        assert row["shards"] == 2
        assert "shard0_tx_s" in row and "shard1_tx_s" in row
        assert "aggregate_throughput_tx_s" in row and "imbalance" in row

    def test_empty_run_summarises_to_zero(self):
        summary = ShardedMetrics(num_shards=3).summarise()
        assert summary.imbalance == 0.0
        assert summary.aggregate_throughput_tx_s == 0.0


class TestPerShardVerifyCacheStats:
    """The shared KeyStore attributes cache traffic to the signer's shard."""

    def build(self, num_shards=2):
        from repro.runtime.experiments import ExperimentScale, build_sharded_config
        from repro.sharding.deployment import build_sharded_deployment

        scale = ExperimentScale(
            name="verify-cache-test", f=1, num_clients=8, batch_size=4,
            warmup_batches=1, measured_batches=3, worker_threads=4,
            max_sim_seconds=10.0)
        config = build_sharded_config("minbft", scale, num_shards=num_shards)
        return build_sharded_deployment(config)

    def test_scope_resolver_maps_group_identities(self):
        from repro.sharding.deployment import shard_scope

        assert shard_scope("shard0/replica-1") == 0
        assert shard_scope("shard3/replica-0") == 3
        assert shard_scope("tc/shard2/replica-1") == 2
        assert shard_scope("client-5") is None
        assert shard_scope("shardX/replica-1") is None

    def test_run_attributes_cache_traffic_per_shard(self):
        deployment = self.build(num_shards=2)
        result = deployment.run_until_target()
        cache = result.metrics.shard_verify_cache
        assert len(cache) == 2
        assert all(stats.lookups > 0 for stats in cache)
        rates = result.metrics.shard_verify_hit_rates
        assert len(rates) == 2
        assert all(0.0 <= rate <= 1.0 for rate in rates)
        assert rates == tuple(stats.hit_rate for stats in cache)
        report = result.metrics.verify_cache_report()
        assert [row["shard"] for row in report] == [0, 1]
        # The per-scope split must tally with what the shared store counted
        # for group identities (global client traffic is unattributed).
        store = deployment.keystore
        assert (sum(s.verify_cache_hits for s in cache)
                <= store.stats.verify_cache_hits)
        assert (sum(s.verify_cache_misses for s in cache)
                <= store.stats.verify_cache_misses)

    def test_row_schema_is_unchanged_by_cache_stats(self):
        deployment = self.build(num_shards=2)
        row = deployment.run_until_target().as_row()
        assert not any("verify" in key for key in row)

    def test_single_group_deployments_pay_nothing(self):
        from repro.runtime.experiments import ExperimentScale, build_config
        from repro.runtime.deployment import Deployment

        scale = ExperimentScale(
            name="verify-cache-test", f=1, num_clients=4, batch_size=4,
            warmup_batches=1, measured_batches=2, worker_threads=4,
            max_sim_seconds=10.0)
        deployment = Deployment(build_config("minbft", scale))
        deployment.run_until_target()
        # No resolver installed: the per-scope dict stays empty.
        assert deployment.keystore.scoped_stats == {}
