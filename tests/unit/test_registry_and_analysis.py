"""Unit tests for the protocol registry, Figure 1 analysis and FlexiTrust transform."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.types import ConsensusMode, ReplicationRegime, TrustedAbstraction
from repro.core.analysis import figure1_table, format_table
from repro.core.flexitrust import (
    transform,
    transformable_protocols,
    trusted_accesses_per_batch,
)
from repro.protocols import PROTOCOLS, get_protocol, protocol_names
from repro.protocols.registry import ReplyPolicy


class TestRegistry:
    def test_all_ten_protocols_registered(self):
        expected = {"pbft", "zyzzyva", "pbft-ea", "opbft-ea", "minbft", "minzz",
                    "flexi-bft", "flexi-zz", "oflexi-bft", "oflexi-zz"}
        assert expected == set(protocol_names())

    def test_lookup_is_case_insensitive(self):
        assert get_protocol("Flexi-BFT").name == "flexi-bft"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            get_protocol("raft")

    def test_replication_factors(self):
        assert get_protocol("pbft").replicas(8) == 25
        assert get_protocol("minbft").replicas(8) == 17
        assert get_protocol("flexi-zz").replicas(20) == 61

    def test_trust_bft_protocols_are_sequential(self):
        for name in ("pbft-ea", "minbft", "minzz"):
            assert get_protocol(name).consensus_mode is ConsensusMode.SEQUENTIAL

    def test_flexitrust_protocols_are_parallel_3f1(self):
        for name in ("flexi-bft", "flexi-zz"):
            spec = get_protocol(name)
            assert spec.consensus_mode is ConsensusMode.PARALLEL
            assert spec.regime is ReplicationRegime.THREE_F_PLUS_ONE
            assert spec.only_primary_tc

    def test_reply_policies_match_paper(self):
        f, m = 8, 25
        assert get_protocol("pbft").reply_policy.fast_quorum(m, f) == 9
        assert get_protocol("flexi-bft").reply_policy.fast_quorum(m, f) == 9
        assert get_protocol("flexi-zz").reply_policy.fast_quorum(m, f) == 17
        assert get_protocol("zyzzyva").reply_policy.fast_quorum(m, f) == 25
        assert get_protocol("minzz").reply_policy.fast_quorum(17, f) == 17

    def test_reply_policy_rejects_unknown_rule(self):
        with pytest.raises(ConfigurationError):
            ReplyPolicy(fast_quorum_rule="all of them").fast_quorum(4, 1)

    def test_phase_counts(self):
        assert get_protocol("pbft").phases == 3
        assert get_protocol("pbft-ea").phases == 3
        assert get_protocol("minbft").phases == 2
        assert get_protocol("flexi-bft").phases == 2
        assert get_protocol("minzz").phases == 1
        assert get_protocol("flexi-zz").phases == 1


class TestFigure1:
    def test_table_contains_trusted_protocols_only_by_default(self):
        rows = {row.protocol for row in figure1_table()}
        assert "Pbft" not in rows
        assert {"MinBFT", "MinZZ", "Pbft-EA", "Flexi-BFT", "Flexi-ZZ"} <= rows

    def test_flexitrust_rows_match_paper_claims(self):
        rows = {row.protocol: row for row in figure1_table()}
        for name in ("Flexi-BFT", "Flexi-ZZ"):
            row = rows[name]
            assert row.replicas == "3f+1"
            assert row.bft_liveness
            assert row.out_of_order
            assert row.only_primary_tc
            assert row.trusted_memory == "low"

    def test_trust_bft_rows_match_paper_claims(self):
        rows = {row.protocol: row for row in figure1_table()}
        assert rows["Pbft-EA"].trusted_memory == "high"
        assert not rows["MinBFT"].out_of_order
        assert not rows["MinZZ"].bft_liveness
        assert rows["MinBFT"].replicas == "2f+1"

    def test_format_table_renders_every_row(self):
        rows = figure1_table(include_baselines=True)
        text = format_table(rows)
        for row in rows:
            assert row.protocol in text


class TestTransformation:
    def test_transformable_protocols_are_the_trust_bft_ones(self):
        assert set(transformable_protocols()) == {"minbft", "minzz", "pbft-ea",
                                                  "opbft-ea"}

    def test_minbft_maps_to_flexi_bft(self):
        assert transform("minbft").target.name == "flexi-bft"

    def test_minzz_maps_to_flexi_zz(self):
        assert transform("minzz").target.name == "flexi-zz"

    def test_transformation_has_three_steps(self):
        transformation = transform("minbft")
        assert len(transformation.steps) == 3
        assert "AppendF" in transformation.summary()

    def test_bft_protocols_not_transformable(self):
        with pytest.raises(ConfigurationError):
            transform("pbft")
        with pytest.raises(ConfigurationError):
            transform("flexi-zz")

    def test_trusted_access_counts_favour_flexitrust(self):
        n = 17
        flexi = trusted_accesses_per_batch(PROTOCOLS["flexi-bft"], n)
        minbft = trusted_accesses_per_batch(PROTOCOLS["minbft"], n)
        pbft = trusted_accesses_per_batch(PROTOCOLS["pbft"], n)
        assert flexi == 1
        assert minbft > flexi
        assert pbft == 0
