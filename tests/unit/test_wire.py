"""Unit tests for the versioned binary wire codec."""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass

import pytest

from repro.common.errors import (
    BadFrameMagic,
    ConfigurationError,
    MalformedWirePayload,
    OversizedFrame,
    TruncatedFrame,
    UnencodableWirePayload,
    UnknownWireClass,
    UnsupportedWireVersion,
    WireError,
)
from repro.common.types import RequestId
from repro.crypto.digest import canonical_bytes, digest
from repro.execution.state_machine import Operation
from repro.net.network import Envelope
from repro.net.wire import (
    FLAG_PICKLE,
    HEADER,
    HEADER_SIZE,
    MAX_DECODE_DEPTH,
    WIRE_MAGIC,
    WIRE_VERSION,
    WireCodec,
    WireRegistry,
    decode_payload,
    encode_payload,
    wire_serializable,
)
from repro.protocols.messages import ClientRequest, RequestBatch
from repro.runtime.unsafe_pickle import UnsafePickleWireCodec


def _request(number: int = 1) -> ClientRequest:
    return ClientRequest(
        request_id=RequestId(client="test-client", number=number),
        operations=(Operation(action="write", key="k", value="v"),))


def _envelope(payload: object) -> Envelope:
    return Envelope(source="a", destination="b", payload=payload,
                    sent_at=1.0, delivered_at=2.0)


# ---------------------------------------------------------------- round trips
class TestRoundTrips:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 10**40, -(10**40), 0.0, 1.5, -2.25,
        "", "hello", "ünïcode ✓", b"", b"\x00\xff" * 10,
        [], [1, "two", b"three", None], {"k": "v", "n": 3},
        {1: [2, {3: 4}]}, set(), {1, 2, 3}, frozenset({"a", "b"}),
    ])
    def test_plain_values(self, value):
        codec = WireCodec()
        decoded = codec.decode_frame(codec.encode_frame(value))
        assert decoded == value

    def test_nested_message(self):
        codec = WireCodec()
        batch = RequestBatch(requests=(_request(1), _request(2)))
        env = _envelope(batch)
        decoded = codec.decode_frame(codec.encode_frame(env))
        assert decoded == env
        # declared field types are restored, not the encoder's collapsed ones
        assert isinstance(decoded.payload.requests, tuple)
        assert isinstance(decoded.payload.requests[0].operations, tuple)

    def test_decoded_instance_digests_identically(self):
        codec = WireCodec()
        request = _request()
        decoded = codec.decode_frame(codec.encode_frame(request))
        assert canonical_bytes(decoded) == canonical_bytes(request)
        assert digest(decoded) == digest(request)

    def test_decode_pins_canonical_cache(self):
        from repro.crypto.digest import _CANONICAL_CACHE

        codec = WireCodec()
        request = _request()
        frame = codec.encode_frame(request)
        decoded = codec.decode_frame(frame)
        # the received wire slice doubles as the canonical-encoding cache:
        # the receiver never re-encodes what the sender already encoded
        assert getattr(decoded, _CANONICAL_CACHE) == frame[HEADER_SIZE:]

    def test_sets_inside_payload(self):
        codec = WireCodec()
        decoded = codec.decode_frame(codec.encode_frame({"s": {1, "x"}}))
        assert decoded == {"s": {1, "x"}}

    def test_set_terminator_string_ambiguity(self):
        # a set whose member is a string: the decoder must not confuse the
        # member's 's<len>:' tag with the set terminator
        codec = WireCodec()
        for value in ({"s"}, {"1"}, {"s", "1", "11"}, {""}):
            assert codec.decode_frame(codec.encode_frame(value)) == value


# ------------------------------------------------------------ framing errors
class TestMalformedFrames:
    def _frame(self, payload: bytes, magic=WIRE_MAGIC, version=WIRE_VERSION,
               flags=0, length=None) -> bytes:
        length = len(payload) if length is None else length
        return HEADER.pack(magic, version, flags, length) + payload

    def test_truncated_header(self):
        with pytest.raises(TruncatedFrame):
            WireCodec().decode_frame(b"RB\x01")

    def test_truncated_payload(self):
        frame = self._frame(encode_payload("hello"), length=1000)
        with pytest.raises(TruncatedFrame):
            WireCodec().decode_frame(frame)

    def test_bad_magic(self):
        frame = self._frame(encode_payload("x"), magic=b"ZZ")
        with pytest.raises(BadFrameMagic):
            WireCodec().decode_frame(frame)

    def test_unknown_version(self):
        frame = self._frame(encode_payload("x"), version=WIRE_VERSION + 1)
        with pytest.raises(UnsupportedWireVersion):
            WireCodec().decode_frame(frame)

    def test_unknown_flags(self):
        frame = self._frame(encode_payload("x"), flags=0x80)
        with pytest.raises(MalformedWirePayload):
            WireCodec().decode_frame(frame)

    def test_oversize_length_rejected_from_header_alone(self):
        # a corrupt header claiming 4 GiB must be rejected before any
        # payload allocation — parse_header sees only the 8 header bytes
        header = HEADER.pack(WIRE_MAGIC, WIRE_VERSION, 0, 2**32 - 1)
        with pytest.raises(OversizedFrame):
            WireCodec().parse_header(header)

    def test_oversize_outgoing_frame(self):
        codec = WireCodec(max_frame_bytes=64)
        with pytest.raises(OversizedFrame):
            codec.encode_frame("x" * 100)

    def test_unknown_class(self):
        payload = b"D7:Nothing s1:x i1:1 d".replace(b" ", b"")
        with pytest.raises(UnknownWireClass):
            decode_payload(payload)

    def test_every_malformed_case_is_a_wire_error(self):
        codec = WireCodec()
        cases = [
            b"",                                  # empty frame
            b"RB",                                # truncated header
            self._frame(b"", magic=b"XX"),        # bad magic
            self._frame(b"", version=99),         # unknown version
            self._frame(b"i3:1_0"),               # non-canonical int
            self._frame(b"i2:05"),                # leading zero
            self._frame(b"i2:-0"),                # negative zero
            self._frame(b"f3:1.50"),              # non-canonical float
            self._frame(b"s5:ab"),                # truncated string body
            self._frame(b"s2:ab" + b"junk"),      # trailing bytes
            self._frame(b"Ls1:a"),                # unterminated list
            self._frame(b"Ms1:a"),                # unterminated dict
            self._frame(b"q"),                    # unknown tag
            self._frame(b"ML1:lT" + b"m"),        # unhashable dict key
        ]
        for frame in cases:
            with pytest.raises(WireError):
                codec.decode_frame(frame)

    def test_depth_bomb(self):
        payload = b"L" * (MAX_DECODE_DEPTH + 10)
        with pytest.raises(MalformedWirePayload):
            decode_payload(payload)

    def test_wrong_field_order_rejected(self):
        # strict decoding: canonical declaration order only (anything else
        # would re-encode differently and poison the pinned cache)
        good = canonical_bytes(RequestId(client="c", number=1))
        assert good.startswith(b"D")
        swapped = good.replace(b"s6:client", b"s6:CLIENT")
        with pytest.raises(MalformedWirePayload):
            decode_payload(swapped)

    def test_unencodable_payload(self):
        with pytest.raises(UnencodableWirePayload):
            WireCodec().encode_frame(object())


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_name_collision_rejected(self):
        registry = WireRegistry()

        @dataclass(frozen=True)
        class Thing:
            x: int

        registry.register(Thing)
        registry.register(Thing)  # re-registering the same class is fine
        first = Thing

        @dataclass(frozen=True)
        class Thing:  # noqa: F811 — the collision is the point
            y: int

        with pytest.raises(ConfigurationError):
            registry.register(Thing)
        assert registry.registered_classes()["Thing"] is first

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            WireRegistry().register(dict)

    def test_custom_registry_round_trip(self):
        registry = WireRegistry()

        @dataclass(frozen=True)
        class Point:
            x: int
            y: int

        registry.register(Point)
        codec = WireCodec(registry=registry)
        assert codec.decode_frame(codec.encode_frame(Point(3, 4))) == Point(3, 4)

    def test_wire_serializable_returns_class(self):
        @dataclass(frozen=True)
        class _Probe:
            n: int

        try:
            assert wire_serializable(_Probe) is _Probe
        finally:
            # keep the default registry clean for other tests
            from repro.net.wire import WIRE_REGISTRY
            WIRE_REGISTRY._by_name.pop("_Probe", None)


# ------------------------------------------------------------- pickle hatch
class TestPickleEscapeHatch:
    def test_default_codec_refuses_pickled_frames(self):
        frame = UnsafePickleWireCodec().encode_frame(_envelope("x"))
        flags, _ = WireCodec().parse_header(frame)
        assert flags & FLAG_PICKLE
        with pytest.raises(MalformedWirePayload):
            WireCodec().decode_frame(frame)

    def test_unsafe_codec_round_trips_pickle(self):
        codec = UnsafePickleWireCodec()
        env = _envelope(_request())
        assert codec.decode_frame(codec.encode_frame(env)) == env

    def test_unsafe_codec_accepts_binary_frames(self):
        env = _envelope("mixed")
        frame = WireCodec().encode_frame(env)
        assert UnsafePickleWireCodec().decode_frame(frame) == env

    def test_pickled_frame_carries_wire_header(self):
        frame = UnsafePickleWireCodec().encode_frame("x")
        magic, version, flags, length = HEADER.unpack(frame[:HEADER_SIZE])
        assert (magic, version) == (WIRE_MAGIC, WIRE_VERSION)
        assert flags == FLAG_PICKLE
        assert pickle.loads(frame[HEADER_SIZE:]) == "x"


# ----------------------------------------------------------------- contracts
class TestFrameLayout:
    def test_header_layout_is_pinned(self):
        # README documents this layout; changing it is a WIRE_VERSION bump
        assert WIRE_MAGIC == b"RB"
        assert WIRE_VERSION == 1
        assert HEADER_SIZE == 8
        assert HEADER.format == ">2sBBI"

    def test_frame_is_header_plus_canonical_payload(self):
        env = _envelope("payload")
        frame = WireCodec().encode_frame(env)
        assert frame[:2] == WIRE_MAGIC
        assert frame[HEADER_SIZE:] == canonical_bytes(env)
        length = struct.unpack(">I", frame[4:8])[0]
        assert length == len(frame) - HEADER_SIZE
