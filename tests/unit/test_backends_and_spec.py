"""Backend registry and the DeploymentSpec single build path.

The deployment layer is backend-parameterized: one spec must construct any
deployment shape (plain, sharded, fault-scheduled) on any kernel/transport
pair.  These tests pin the registry semantics, the spec's validation and the
classes each (backend, shape) combination actually builds.
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BACKENDS,
    Backend,
    LiveBackend,
    LiveTcpBackend,
    SimBackend,
    resolve_backend,
)
from repro.common.errors import ConfigurationError
from repro.net.tcp import TcpTransport
from repro.net.network import Network
from repro.realtime import LiveDeployment, LiveNetwork, LiveShardedDeployment
from repro.realtime.kernel import AsyncioKernel
from repro.recovery import FaultSchedule, crash_at, restart_at
from repro.runtime.deployment import Deployment
from repro.runtime.experiments import ExperimentScale, build_config
from repro.runtime.spec import DeploymentSpec
from repro.sharding.deployment import ShardedDeployment
from repro.sim.kernel import Simulator

_SCALE = ExperimentScale(
    name="spec-test", f=1, num_clients=4, batch_size=4,
    warmup_batches=1, measured_batches=2, worker_threads=4,
    max_sim_seconds=10.0)


def _config(protocol: str = "minbft"):
    return build_config(protocol, _SCALE)


class TestBackendRegistry:
    def test_three_backends_are_registered(self):
        assert set(BACKENDS) == {"sim", "live", "live-tcp"}

    def test_resolve_by_name_and_alias(self):
        assert isinstance(resolve_backend("sim"), SimBackend)
        assert isinstance(resolve_backend("live"), LiveBackend)
        assert isinstance(resolve_backend("asyncio"), LiveBackend)
        assert isinstance(resolve_backend("live-tcp"), LiveTcpBackend)
        assert isinstance(resolve_backend("tcp"), LiveTcpBackend)

    def test_resolve_none_is_the_simulator(self):
        assert resolve_backend(None) is BACKENDS["sim"]

    def test_resolve_passes_instances_through(self):
        backend = BACKENDS["live"]
        assert resolve_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend("quantum")

    def test_realtime_flags(self):
        assert not BACKENDS["sim"].realtime
        assert BACKENDS["live"].realtime
        assert BACKENDS["live-tcp"].realtime

    def test_kernel_factories(self):
        assert isinstance(BACKENDS["sim"].build_kernel(), Simulator)
        for name in ("live", "live-tcp"):
            kernel = BACKENDS[name].build_kernel()
            try:
                assert isinstance(kernel, AsyncioKernel)
            finally:
                kernel.close()


class TestDeploymentBackendParameter:
    def test_default_backend_is_the_simulator(self):
        deployment = Deployment(_config())
        assert deployment.backend.name == "sim"
        assert isinstance(deployment.sim, Simulator)
        assert type(deployment.network) is Network

    def test_live_backend_builds_queue_transport(self):
        with Deployment(_config(), backend="live") as deployment:
            assert isinstance(deployment.sim, AsyncioKernel)
            assert isinstance(deployment.network, LiveNetwork)

    def test_tcp_backend_builds_tcp_transport(self):
        with Deployment(_config(), backend="live-tcp") as deployment:
            assert isinstance(deployment.sim, AsyncioKernel)
            assert isinstance(deployment.network, TcpTransport)

    def test_live_deployment_shim_pins_a_realtime_backend(self):
        from repro.sharding.config import ShardedConfig

        with pytest.raises(ValueError, match="realtime backend"):
            LiveDeployment(_config(), backend="sim")
        with pytest.raises(ValueError, match="realtime backend"):
            LiveShardedDeployment(ShardedConfig(base=_config(), num_shards=2),
                                  backend="sim")

    def test_close_is_a_no_op_on_the_simulator(self):
        deployment = Deployment(_config())
        deployment.run_until_target(target_requests=4)
        deployment.close()  # must not raise


class TestDeploymentSpec:
    def test_plain_sim_build(self):
        deployment = DeploymentSpec(_config()).build()
        assert type(deployment) is Deployment
        assert deployment.backend.name == "sim"

    def test_sharded_build(self):
        deployment = DeploymentSpec(_config(), num_shards=3).build()
        assert isinstance(deployment, ShardedDeployment)
        assert deployment.num_shards == 3
        assert deployment.backend.name == "sim"

    def test_sharded_build_forwards_client_and_router_knobs(self):
        deployment = DeploymentSpec(_config(), num_shards=2, num_clients=3,
                                    router_seed=7).build()
        assert len(deployment.clients) == 3
        assert deployment.config.router_seed == 7

    def test_fault_schedule_reaches_the_deployment(self):
        schedule = FaultSchedule((crash_at(2, 1000.0), restart_at(2, 5000.0)))
        deployment = DeploymentSpec(_config(), fault_schedule=schedule).build()
        assert deployment.fault_schedule is schedule

    def test_per_group_fault_schedules_reach_the_groups(self):
        schedule = FaultSchedule((crash_at(2, 1000.0), restart_at(2, 5000.0)))
        deployment = DeploymentSpec(_config(), num_shards=2,
                                    fault_schedules={1: schedule}).build()
        assert deployment.groups[0].fault_schedule is None
        assert deployment.groups[1].fault_schedule is schedule

    def test_plain_spec_rejects_per_group_schedules(self):
        schedule = FaultSchedule((crash_at(2, 1000.0),))
        with pytest.raises(ConfigurationError, match="address shards"):
            DeploymentSpec(_config(), fault_schedules={0: schedule}).build()

    def test_sharded_spec_rejects_single_schedule(self):
        schedule = FaultSchedule((crash_at(2, 1000.0),))
        with pytest.raises(ConfigurationError, match="per-group"):
            DeploymentSpec(_config(), num_shards=2,
                           fault_schedule=schedule).build()

    def test_spec_builds_equivalent_simulated_results(self):
        # The spec path and the direct constructor are the same build path:
        # identical configuration must produce identical simulated rows.
        direct = Deployment(_config()).run_until_target(target_requests=8)
        via_spec = DeploymentSpec(_config()).build().run_until_target(
            target_requests=8)
        assert direct.as_row() == via_spec.as_row()

    @pytest.mark.parametrize("backend", ["live", "live-tcp"])
    def test_spec_builds_live_deployments(self, backend):
        deployment = DeploymentSpec(_config(), backend=backend).build()
        try:
            result = deployment.run_until_target(target_requests=6)
            assert result.metrics.completed_requests > 0
            assert result.consensus_safe
        finally:
            deployment.close()


class TestCustomBackendObject:
    def test_a_backend_instance_is_usable_directly(self):
        class CountingSim(SimBackend):
            name = "counting-sim"
            built = 0

            def build_kernel(self):
                type(self).built += 1
                return super().build_kernel()

        backend = CountingSim()
        assert isinstance(backend, Backend)
        deployment = Deployment(_config(), backend=backend)
        assert deployment.backend is backend
        assert CountingSim.built == 1
