"""Unit tests for trusted counters, logs, FlexiTrust counters and rollback."""

import pytest

from repro.common.config import SGX_ENCLAVE_COUNTER, SGX_PERSISTENT_COUNTER, TPM_COUNTER
from repro.common.errors import (
    CounterRegression,
    InvalidAttestation,
    SlotOccupied,
    TrustedComponentError,
)
from repro.crypto import KeyStore, digest
from repro.trusted import (
    FlexiTrustCounterSet,
    TrustedComponentHost,
    TrustedCounterSet,
    TrustedLogSet,
    verify_attestation,
)


@pytest.fixture
def keystore():
    return KeyStore(seed=9)


@pytest.fixture
def tc_key(keystore):
    return keystore.register("tc/replica-0")


class TestTrustedCounter:
    def test_append_without_value_increments(self, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        a1 = counters.append(0, None, digest("x"))
        a2 = counters.append(0, None, digest("y"))
        assert (a1.value, a2.value) == (1, 2)

    def test_append_with_explicit_value_jumps_forward(self, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        attestation = counters.append(0, 10, digest("x"))
        assert attestation.value == 10
        assert counters.value(0) == 10

    def test_regression_rejected(self, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        counters.append(0, 5, digest("x"))
        with pytest.raises(CounterRegression):
            counters.append(0, 5, digest("y"))
        with pytest.raises(CounterRegression):
            counters.append(0, 3, digest("y"))

    def test_independent_counters(self, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        counters.append(0, None, digest("x"))
        counters.append(1, None, digest("y"))
        assert counters.value(0) == 1
        assert counters.value(1) == 1
        assert counters.total_appends() == 2

    def test_snapshot_and_restore(self, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        counters.append(0, None, digest("x"))
        snapshot = counters.snapshot()
        counters.append(0, None, digest("y"))
        counters.restore(snapshot)
        assert counters.value(0) == 1

    def test_attestation_verifies(self, keystore, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        attestation = counters.append(0, None, digest("x"))
        verify_attestation(keystore, attestation,
                           expected_component="tc/replica-0",
                           expected_digest=digest("x"))

    def test_attestation_wrong_digest_rejected(self, keystore, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        attestation = counters.append(0, None, digest("x"))
        with pytest.raises(InvalidAttestation):
            verify_attestation(keystore, attestation, expected_digest=digest("y"))

    def test_ensure_counter_refuses_duplicates(self, tc_key):
        counters = TrustedCounterSet(key=tc_key)
        counters.ensure_counter(3, initial=7)
        assert counters.value(3) == 7
        with pytest.raises(TrustedComponentError):
            counters.ensure_counter(3)


class TestTrustedLog:
    def test_sequential_appends(self, tc_key):
        logs = TrustedLogSet(key=tc_key)
        a1 = logs.append(0, None, digest("x"))
        a2 = logs.append(0, None, digest("y"))
        assert (a1.value, a2.value) == (1, 2)

    def test_skip_ahead_burns_slots(self, tc_key):
        logs = TrustedLogSet(key=tc_key)
        logs.append(0, 5, digest("x"))
        with pytest.raises(SlotOccupied):
            logs.append(0, 3, digest("y"))

    def test_lookup_returns_attested_value(self, keystore, tc_key):
        logs = TrustedLogSet(key=tc_key)
        logs.append(0, None, digest("x"))
        attestation = logs.lookup(0, 1)
        assert attestation.payload_digest == digest("x")
        verify_attestation(keystore, attestation)

    def test_lookup_empty_slot_rejected(self, tc_key):
        logs = TrustedLogSet(key=tc_key)
        with pytest.raises(TrustedComponentError):
            logs.lookup(0, 1)

    def test_memory_tracking_and_truncation(self, tc_key):
        logs = TrustedLogSet(key=tc_key)
        for i in range(10):
            logs.append(0, None, digest(i))
        assert logs.memory_entries() == 10
        dropped = logs.truncate_below(0, 6)
        assert dropped == 5
        assert logs.memory_entries() == 5

    def test_snapshot_restore(self, tc_key):
        logs = TrustedLogSet(key=tc_key)
        logs.append(0, None, digest("x"))
        snap = logs.snapshot()
        logs.append(0, None, digest("y"))
        logs.restore(snap)
        assert logs.last_slot(0) == 1


class TestFlexiCounter:
    def test_append_f_is_contiguous(self, tc_key):
        flexi = FlexiTrustCounterSet(key=tc_key)
        values = [flexi.append_f(0, digest(i)).value for i in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_create_returns_fresh_identifiers(self, tc_key):
        flexi = FlexiTrustCounterSet(key=tc_key)
        id1, att1 = flexi.create(0)
        id2, att2 = flexi.create(10)
        assert id1 != id2
        assert att2.value == 10
        assert flexi.append_f(id2, digest("x")).value == 11

    def test_create_negative_initial_rejected(self, tc_key):
        flexi = FlexiTrustCounterSet(key=tc_key)
        with pytest.raises(TrustedComponentError):
            flexi.create(-1)

    def test_snapshot_restore_preserves_next_id(self, tc_key):
        flexi = FlexiTrustCounterSet(key=tc_key)
        cid, _ = flexi.create(0)
        flexi.append_f(cid, digest("x"))
        snap = flexi.snapshot()
        flexi.append_f(cid, digest("y"))
        flexi.restore(snap)
        assert flexi.value(cid) == 1


class TestTrustedComponentHost:
    def test_volatile_hardware_allows_rollback(self, tc_key):
        host = TrustedComponentHost(tc_key, SGX_ENCLAVE_COUNTER)
        host.counter_append(0, None, digest("x"))
        snapshot = host.snapshot()
        host.counter_append(0, None, digest("y"))
        host.rollback(snapshot)
        assert host.counters.value(0) == 1

    @pytest.mark.parametrize("spec", [SGX_PERSISTENT_COUNTER, TPM_COUNTER])
    def test_persistent_hardware_refuses_rollback(self, tc_key, spec):
        host = TrustedComponentHost(tc_key, spec)
        host.counter_append(0, None, digest("x"))
        snapshot = host.snapshot()
        with pytest.raises(TrustedComponentError):
            host.rollback(snapshot)

    def test_pending_access_accounting(self, tc_key):
        host = TrustedComponentHost(tc_key, SGX_ENCLAVE_COUNTER)
        host.counter_append(0, None, digest("x"))
        host.append_f(0, digest("y"))
        assert host.take_pending_accesses() == 2
        assert host.take_pending_accesses() == 0

    def test_stats_track_operation_kinds(self, tc_key):
        host = TrustedComponentHost(tc_key, SGX_ENCLAVE_COUNTER)
        host.counter_append(0, None, digest("a"))
        host.log_append(0, None, digest("b"))
        host.log_lookup(0, 1)
        host.append_f(0, digest("c"))
        host.create_counter(5)
        assert host.stats.counter_appends == 1
        assert host.stats.log_appends == 1
        assert host.stats.log_lookups == 1
        assert host.stats.flexi_appends == 1
        assert host.stats.creates == 1
        assert host.stats.total == 5
