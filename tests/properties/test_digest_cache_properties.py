"""Property tests: cached and uncached digest/signature paths must agree.

The memoisation layer (per-instance canonical-bytes caches, signed-part
bytes, the key store's verification cache, the HMAC templates) exists purely
to avoid redundant work — on arbitrary messages it must be observationally
identical to the uncached reference paths.  These properties pin that down:
a caching bug that changed any encoding, digest or signature outcome would
change simulated consensus behaviour everywhere.
"""

import dataclasses
import hashlib
import hmac as hmac_mod

from hypothesis import given, settings, strategies as st

from repro.common.types import RequestId
from repro.crypto import KeyStore, canonical_bytes, combine_digests, digest
from repro.crypto.signatures import _SIG_TAG, SigningKey
from repro.execution.state_machine import Operation
from repro.protocols.messages import (
    ClientRequest,
    Commit,
    Prepare,
    RequestBatch,
    signed_part_bytes,
    with_signature,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
plain_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(),
    st.floats(allow_nan=False), st.text(max_size=24),
    st.binary(max_size=24))

plain_values = st.recursive(
    plain_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=12)

operations = st.builds(
    Operation,
    action=st.sampled_from(["read", "write", "rmw"]),
    key=st.text(min_size=1, max_size=12),
    value=st.text(max_size=16))

request_ids = st.builds(
    RequestId, client=st.text(min_size=1, max_size=10),
    number=st.integers(min_value=0, max_value=1_000_000))

client_requests = st.builds(
    ClientRequest, request_id=request_ids,
    operations=st.lists(operations, min_size=1, max_size=4).map(tuple))

batches = st.builds(
    RequestBatch,
    requests=st.lists(client_requests, min_size=1, max_size=4).map(tuple))

prepares = st.builds(
    Prepare, view=st.integers(min_value=0, max_value=50),
    seq=st.integers(min_value=0, max_value=10_000),
    batch_digest=st.binary(min_size=32, max_size=32),
    replica=st.integers(min_value=0, max_value=30))

commits = st.builds(
    Commit, view=st.integers(min_value=0, max_value=50),
    seq=st.integers(min_value=0, max_value=10_000),
    batch_digest=st.binary(min_size=32, max_size=32),
    replica=st.integers(min_value=0, max_value=30))

signable_messages = st.one_of(client_requests, prepares, commits)

prop_settings = settings(max_examples=150, deadline=None)


# ---------------------------------------------------------------------------
# canonical encoding and digests
# ---------------------------------------------------------------------------
@prop_settings
@given(plain_values)
def test_cached_and_uncached_encoding_agree_on_plain_values(value):
    assert canonical_bytes(value) == canonical_bytes(value, use_cache=False)
    assert digest(value) == digest(value, use_cache=False)


@prop_settings
@given(st.one_of(client_requests, batches, prepares, commits))
def test_cached_and_uncached_encoding_agree_on_messages(message):
    uncached = canonical_bytes(message, use_cache=False)
    assert canonical_bytes(message) == uncached          # populates the cache
    assert canonical_bytes(message) == uncached          # reads the cache
    assert digest(message) == digest(message, use_cache=False)


@prop_settings
@given(client_requests)
def test_payload_digest_matches_uncached_reference(request):
    reference = hashlib.sha256(canonical_bytes(
        {"request_id": request.request_id, "operations": request.operations},
        use_cache=False)).digest()
    assert request.payload_digest() == reference
    assert request.payload_digest() == reference  # memoised second read


@prop_settings
@given(batches)
def test_batch_digest_matches_uncached_reference(batch):
    reference = combine_digests(
        *(hashlib.sha256(canonical_bytes(
            {"request_id": r.request_id, "operations": r.operations},
            use_cache=False)).digest() for r in batch.requests))
    assert batch.digest() == reference
    assert batch.digest() == reference


@prop_settings
@given(signable_messages)
def test_signed_part_bytes_matches_uncached_reference(message):
    reference = canonical_bytes(message.signed_part(), use_cache=False)
    assert signed_part_bytes(message) == reference
    assert signed_part_bytes(message) == reference


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------
@prop_settings
@given(signable_messages, st.binary(min_size=1, max_size=32))
def test_signature_matches_raw_hmac_reference(message, secret):
    key = SigningKey("signer", secret)
    signature = key.sign_bytes(signed_part_bytes(message))
    reference = hmac_mod.new(
        secret,
        _SIG_TAG + canonical_bytes(message.signed_part(), use_cache=False),
        hashlib.sha256).digest()
    assert signature.value == reference


@prop_settings
@given(signable_messages)
def test_verification_cache_agrees_with_fresh_keystore(message):
    cached_store = KeyStore(seed=5)
    key = cached_store.register("signer")
    signature = key.sign(message.signed_part())
    # Same verification three times through one store: first populates the
    # cache, the rest hit it; a fresh store never hits its cache at all.
    for _ in range(3):
        assert cached_store.is_valid(message.signed_part(), signature)
        assert cached_store.is_valid_encoded(signed_part_bytes(message),
                                             signature)
    fresh = KeyStore(seed=5)
    fresh.register("signer")
    assert fresh.is_valid(message.signed_part(), signature)
    assert cached_store.stats.verify_cache_hits > 0


@prop_settings
@given(signable_messages)
def test_tampered_signature_rejected_by_cached_and_fresh_paths(message):
    store = KeyStore(seed=5)
    key = store.register("signer")
    signature = key.sign(message.signed_part())
    tampered = dataclasses.replace(
        signature, value=bytes(b ^ 0xFF for b in signature.value))
    for _ in range(3):  # the cached False outcome must stay False
        assert not store.is_valid(message.signed_part(), tampered)
    fresh = KeyStore(seed=5)
    fresh.register("signer")
    assert not fresh.is_valid(message.signed_part(), tampered)


@prop_settings
@given(signable_messages)
def test_with_signature_equals_dataclasses_replace(message):
    key = SigningKey("signer", b"secret")
    signed_part_bytes(message)  # populate the cache that the copy keeps
    signature = key.sign_bytes(signed_part_bytes(message))
    fast = with_signature(message, signature)
    reference = dataclasses.replace(message, signature=signature)
    assert fast == reference
    assert type(fast) is type(message)
    # The copy's memoised signed part must equal a from-scratch encoding of
    # the signed copy (signed_part never covers the signature field).
    assert signed_part_bytes(fast) == canonical_bytes(
        reference.signed_part(), use_cache=False)
