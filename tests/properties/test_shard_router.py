"""Property-based tests (hypothesis) for the shard router.

The router is the correctness keystone of sharded deployments: if a key ever
mapped to two shards, two groups would execute conflicting writes; if routing
depended on process state, clients and experiments would disagree about
ownership.  These properties pin both down, plus the statistical one the
scale-out experiment relies on: a zipfian workload leaves no shard idle.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.execution.state_machine import Operation
from repro.sharding import ShardRouter
from repro.workload import ZipfianGenerator

keys = st.text(min_size=1, max_size=24)
shard_counts = st.integers(min_value=1, max_value=16)
seeds = st.integers(min_value=0, max_value=2**31)


class TestRoutingIsAFunction:
    @given(keys, shard_counts, seeds)
    @settings(max_examples=200, deadline=None)
    def test_every_key_maps_to_exactly_one_shard(self, key, num_shards, seed):
        router = ShardRouter(num_shards, seed=seed)
        shards = {router.shard_of(key) for _ in range(5)}
        assert len(shards) == 1
        assert 0 <= shards.pop() < num_shards

    @given(st.lists(keys, min_size=1, max_size=50), shard_counts, seeds)
    @settings(max_examples=100, deadline=None)
    def test_independent_routers_agree(self, key_list, num_shards, seed):
        """Routing is a pure function of (key, num_shards, seed) — two
        routers built independently (as every client builds its own) agree on
        the owner of every key."""
        a = ShardRouter(num_shards, seed=seed)
        b = ShardRouter(num_shards, seed=seed)
        assert [a.shard_of(k) for k in key_list] == [b.shard_of(k) for k in key_list]

    @given(st.lists(keys, min_size=1, max_size=50), shard_counts, seeds)
    @settings(max_examples=100, deadline=None)
    def test_partition_is_exhaustive_and_exclusive(self, key_list, num_shards, seed):
        router = ShardRouter(num_shards, seed=seed)
        operations = [Operation(action="read", key=k) for k in key_list]
        by_shard = router.partition(operations)
        # Exhaustive: every operation lands somewhere...
        assert sum(len(ops) for ops in by_shard.values()) == len(operations)
        # ...and exclusive: only on the shard that owns its key.
        for shard, ops in by_shard.items():
            assert all(router.shard_of(op.key) == shard for op in ops)


class TestZipfCoverage:
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=1000),
           st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=25, deadline=None)
    def test_all_shards_nonempty_under_zipf(self, num_shards, seed, theta):
        """>= 1k zipf-drawn keys touch every shard, whatever the skew —
        the scale-out experiment never runs an idle group."""
        rng = random.Random(seed)
        zipf = ZipfianGenerator(2000, theta, rng)
        router = ShardRouter(num_shards, seed=seed)
        counts = router.distribution(f"user{zipf.next()}" for _ in range(1000))
        assert all(counts[shard] > 0 for shard in range(num_shards))

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_routing_balances_the_raw_keyspace(self, num_shards, seed):
        """Hash partitioning spreads the (unskewed) keyspace roughly evenly."""
        router = ShardRouter(num_shards, seed=seed)
        counts = router.distribution(f"user{i}" for i in range(2000))
        expected = 2000 / num_shards
        assert all(0.5 * expected <= counts[s] <= 1.5 * expected
                   for s in range(num_shards))
