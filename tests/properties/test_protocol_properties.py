"""Property-based tests over whole protocol deployments.

These tests run small deployments under randomly drawn configurations
(protocol, fault threshold, batch size, crashed replica, seed) and check the
paper's Section 2 safety definitions on every run.  They are the closest thing
to a randomized schedule explorer the repository has: the seed changes message
jitter and workload, the crash changes which replicas participate, and the
invariants must hold regardless.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import (
    DeploymentConfig,
    ExperimentConfig,
    FaultConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.protocols import get_protocol
from repro.runtime import Deployment

PROTOCOL_NAMES = ["pbft", "minbft", "minzz", "pbft-ea", "flexi-bft", "flexi-zz"]

deployment_settings = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])


def build(protocol, seed, batch, crash_last):
    spec = get_protocol(protocol)
    n = spec.replicas(1)
    crashed = (n - 1,) if crash_last else ()
    return Deployment(DeploymentConfig(
        protocol=protocol, f=1,
        workload=WorkloadConfig(num_clients=12, records=64),
        protocol_config=ProtocolConfig(batch_size=batch, worker_threads=2,
                                       checkpoint_interval=20),
        faults=FaultConfig(crashed=crashed),
        experiment=ExperimentConfig(warmup_batches=1, measured_batches=5,
                                    seed=seed),
    ))


@given(protocol=st.sampled_from(PROTOCOL_NAMES),
       seed=st.integers(min_value=0, max_value=10_000),
       batch=st.integers(min_value=1, max_value=8),
       crash_last=st.booleans())
@deployment_settings
def test_consensus_and_rsm_safety_hold_under_random_configurations(
        protocol, seed, batch, crash_last):
    deployment = build(protocol, seed, batch, crash_last)
    result = deployment.run_until_target(target_requests=24)
    assert result.consensus_safe
    assert result.rsm_safe
    assert deployment.metrics.completed_count >= 24


@given(protocol=st.sampled_from(PROTOCOL_NAMES),
       seed=st.integers(min_value=0, max_value=10_000))
@deployment_settings
def test_executed_prefixes_agree_across_replicas(protocol, seed):
    deployment = build(protocol, seed, batch=4, crash_last=False)
    deployment.run_until_target(target_requests=24)
    prefix = min(r.ledger.last_executed for r in deployment.replicas)
    for seq in range(1, prefix + 1):
        digests = {r.ledger.entry(seq).batch_digest for r in deployment.replicas}
        assert len(digests) == 1


@given(protocol=st.sampled_from(["flexi-bft", "flexi-zz"]),
       seed=st.integers(min_value=0, max_value=10_000))
@deployment_settings
def test_flexitrust_sequence_numbers_are_contiguous(protocol, seed):
    deployment = build(protocol, seed, batch=3, crash_last=False)
    deployment.run_until_target(target_requests=24)
    primary = deployment.primary
    proposed = sorted(primary.instances)
    assert proposed == list(range(1, len(proposed) + 1))
