"""Hypothesis properties of the execution ledger and checkpoint digests.

Three claims the recovery subsystem leans on:

* **Order sensitivity** — the state digest taken at a checkpoint commits to
  the *order* of the executed writes, not just their set, so two replicas
  that executed different histories cannot present the same checkpoint.
* **Replay stability** — re-executing the same batches from the same initial
  state reproduces the same digests, so a restarted replica replaying its WAL
  converges on the state it crashed with.
* **Snapshot + suffix = original** — rebuilding from a checkpoint snapshot
  plus the log suffix above it yields exactly the state and ledger of a
  replica that executed everything, which is the correctness argument for
  checkpoint-based state transfer.
"""

from hypothesis import given, settings, strategies as st

from repro.common.types import RequestId
from repro.crypto.digest import digest
from repro.execution.kvstore import KeyValueStore
from repro.execution.ledger import ExecutedBatch, Ledger
from repro.execution.state_machine import Operation

#: small key space so random op sequences collide on keys (order matters
#: only when writes overwrite each other).
KEYS = [f"user{i}" for i in range(4)]

operations = st.lists(
    st.tuples(st.sampled_from(KEYS), st.text(alphabet="abcdef", min_size=1,
                                             max_size=4)),
    min_size=2, max_size=24)


def apply_writes(writes) -> KeyValueStore:
    store = KeyValueStore(records=4, value_size=8)
    for key, value in writes:
        store.apply(Operation(action="write", key=key, value=value))
    return store


def executed_batch(seq: int, writes) -> ExecutedBatch:
    return ExecutedBatch(
        seq=seq,
        batch_digest=digest([seq, tuple(writes)]),
        request_ids=(str(RequestId(client="c", number=seq)),),
        results=(), executed_at=float(seq))


@settings(max_examples=60, deadline=None)
@given(operations)
def test_checkpoint_digest_replay_stable(writes):
    assert apply_writes(writes).state_digest() == apply_writes(writes).state_digest()


@settings(max_examples=60, deadline=None)
@given(operations, st.data())
def test_checkpoint_digest_order_sensitive(writes, data):
    """Swapping two writes changes the digest unless the histories converge.

    A permutation only matters when it changes the *last* write to some key,
    so the property is one-sided: distinct final states must yield distinct
    digests, and equal final states equal digests.
    """
    index = data.draw(st.integers(min_value=0, max_value=len(writes) - 2))
    swapped = list(writes)
    swapped[index], swapped[index + 1] = swapped[index + 1], swapped[index]
    original = apply_writes(writes)
    permuted = apply_writes(swapped)
    if original.snapshot() == permuted.snapshot():
        assert original.state_digest() == permuted.state_digest()
    else:
        assert original.state_digest() != permuted.state_digest()


@settings(max_examples=60, deadline=None)
@given(st.lists(operations, min_size=2, max_size=8), st.data())
def test_ledger_rebuilt_from_snapshot_plus_suffix_equals_original(batches, data):
    # The "full history" replica executes every batch, checkpointing midway.
    full_store = KeyValueStore(records=4, value_size=8)
    full_ledger = Ledger()
    checkpoint_at = data.draw(st.integers(min_value=1, max_value=len(batches) - 1))
    snapshot = None
    for seq, writes in enumerate(batches, start=1):
        for key, value in writes:
            full_store.apply(Operation(action="write", key=key, value=value))
        full_ledger.record(executed_batch(seq, writes))
        if seq == checkpoint_at:
            snapshot = full_store.snapshot()
            full_ledger.store_snapshot(seq, snapshot)
            full_ledger.record_checkpoint_digest(seq, full_store.state_digest())
            full_ledger.mark_stable(seq)

    # The "rebuilt" replica restores the snapshot and replays the suffix.
    rebuilt_store = KeyValueStore()
    rebuilt_store.restore(snapshot)
    rebuilt_ledger = Ledger()
    rebuilt_ledger.mark_stable(checkpoint_at)
    rebuilt_ledger.last_executed = checkpoint_at
    for seq, writes in enumerate(batches, start=1):
        if seq <= checkpoint_at:
            continue
        for key, value in writes:
            rebuilt_store.apply(Operation(action="write", key=key, value=value))
        rebuilt_ledger.record(executed_batch(seq, writes))

    assert rebuilt_store.state_digest() == full_store.state_digest()
    assert rebuilt_ledger.last_executed == full_ledger.last_executed
    assert rebuilt_ledger.stable_checkpoint == full_ledger.stable_checkpoint
    suffix = full_ledger.executed_since(checkpoint_at)
    assert rebuilt_ledger.executed_since(checkpoint_at) == suffix
    for entry in suffix:
        assert rebuilt_ledger.entry(entry.seq).batch_digest == entry.batch_digest
