"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.common.types import quorum_2f_plus_1, quorum_f_plus_1, replicas_for, ReplicationRegime
from repro.crypto import KeyStore, canonical_bytes, digest
from repro.crypto.digest import combine_digests
from repro.execution import ExecutedBatch, Ledger
from repro.sim import Simulator
from repro.trusted import FlexiTrustCounterSet, TrustedCounterSet, TrustedLogSet
from repro.workload import ZipfianGenerator

# Strategy for plain-data values the canonical encoder supports.
plain_values = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestCanonicalEncodingProperties:
    @given(plain_values)
    @settings(max_examples=150, deadline=None)
    def test_encoding_is_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)
        assert digest(value) == digest(value)

    @given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_dict_insertion_order_never_leaks(self, mapping):
        items = list(mapping.items())
        random.Random(0).shuffle(items)
        reordered = dict(items)
        assert digest(mapping) == digest(reordered)

    @given(st.lists(st.binary(min_size=32, max_size=32), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_combine_digests_fixed_size(self, digests):
        assert len(combine_digests(*digests)) == 32


class TestSignatureProperties:
    @given(plain_values, plain_values)
    @settings(max_examples=100, deadline=None)
    def test_signature_verifies_only_original_message(self, message, other):
        store = KeyStore(seed=4)
        key = store.register("signer")
        signature = key.sign(message)
        assert store.is_valid(message, signature)
        if canonical_bytes(other) != canonical_bytes(message):
            assert not store.is_valid(other, signature)


class TestTrustedComponentProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_counter_values_strictly_increase(self, increments):
        counters = TrustedCounterSet(key=KeyStore(seed=1).register("tc"))
        current = 0
        values = []
        for inc in increments:
            current += inc
            values.append(counters.append(0, current, digest(inc)).value)
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_appendf_values_are_contiguous(self, payloads):
        flexi = FlexiTrustCounterSet(key=KeyStore(seed=1).register("tc"))
        values = [flexi.append_f(0, digest(p)).value for p in payloads]
        assert values == list(range(1, len(payloads) + 1))

    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_log_never_overwrites_a_slot(self, payloads):
        logs = TrustedLogSet(key=KeyStore(seed=1).register("tc"))
        seen = {}
        for payload in payloads:
            attestation = logs.append(0, None, digest(payload))
            assert attestation.value not in seen
            seen[attestation.value] = digest(payload)
        for slot, expected in seen.items():
            assert logs.lookup(0, slot).payload_digest == expected


class TestLedgerProperties:
    @given(st.permutations(list(range(1, 15))))
    @settings(max_examples=100, deadline=None)
    def test_last_executed_is_longest_contiguous_prefix(self, order):
        ledger = Ledger()
        recorded = set()
        for seq in order:
            ledger.record(ExecutedBatch(seq=seq, batch_digest=b"d" * 32,
                                        request_ids=(), results=(),
                                        executed_at=0.0))
            recorded.add(seq)
            expected = 0
            while expected + 1 in recorded:
                expected += 1
            assert ledger.last_executed == expected
        assert ledger.last_executed == 14


class TestQuorumProperties:
    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_3f1_quorums_intersect_in_an_honest_replica(self, f):
        n = replicas_for(ReplicationRegime.THREE_F_PLUS_ONE, f)
        quorum = quorum_2f_plus_1(f)
        # Two quorums of size 2f+1 out of 3f+1 overlap in at least f+1 replicas.
        overlap = 2 * quorum - n
        assert overlap >= f + 1

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_2f1_weak_quorums_may_share_only_one_replica(self, f):
        n = replicas_for(ReplicationRegime.TWO_F_PLUS_ONE, f)
        quorum = quorum_f_plus_1(f)
        overlap = 2 * quorum - n
        # The paper's responsiveness argument: the overlap can be as small as
        # a single replica, so one honest-but-isolated replica is all that is
        # guaranteed to have executed.
        assert overlap == 1


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1_000.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_events_observe_monotonic_time(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run_until_idle()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)


class TestZipfianProperties:
    @given(st.integers(min_value=1, max_value=5_000),
           st.floats(min_value=0.0, max_value=0.99),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=100, deadline=None)
    def test_samples_stay_in_range(self, items, theta, seed):
        generator = ZipfianGenerator(items, theta, random.Random(seed))
        for value in generator.sample(50):
            assert 0 <= value < items
