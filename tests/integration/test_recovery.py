"""Crash-recovery integration: restart, state transfer, rejoin, rollback."""

import pytest

from repro.common.config import (
    DeploymentConfig,
    ExperimentConfig,
    FaultConfig,
    ProtocolConfig,
    RecoveryConfig,
    ROLLBACK_PROTECTED_COUNTER,
    SGX_ENCLAVE_COUNTER,
    WorkloadConfig,
)
from repro.common.errors import ConfigurationError
from repro.common.types import ms, seconds
from repro.core.attacks import run_restart_rollback_attack
from repro.recovery import (
    FaultSchedule,
    crash_at,
    heal_at,
    partition_at,
    restart_at,
)
from repro.runtime import Deployment
from repro.sharding.config import ShardedConfig
from repro.sharding.deployment import ShardedDeployment


def recovery_config(protocol, recovery=None, seed=5, clients=12):
    return DeploymentConfig(
        protocol=protocol, f=1,
        workload=WorkloadConfig(num_clients=clients, records=100),
        protocol_config=ProtocolConfig(
            batch_size=4, worker_threads=4, checkpoint_interval=20,
            request_timeout_us=ms(60), view_change_timeout_us=ms(60)),
        experiment=ExperimentConfig(warmup_batches=1, measured_batches=8,
                                    seed=seed),
        recovery=recovery if recovery is not None else RecoveryConfig(),
    )


class TestCrashRestartRejoin:
    @pytest.mark.parametrize("protocol,crashed", [
        ("minbft", 2), ("flexi-bft", 3), ("pbft", 3), ("flexi-zz", 3),
    ])
    def test_restarted_replica_transfers_state_and_rejoins(self, protocol, crashed):
        """The acceptance scenario: crash mid-run, restart, state transfer,
        then participation in *new* consensus instances with a ledger that
        matches the honest majority."""
        schedule = FaultSchedule((crash_at(crashed, ms(300)),
                                  restart_at(crashed, ms(600))))
        deployment = Deployment(recovery_config(protocol),
                                fault_schedule=schedule)
        deployment.start_clients()
        deployment.sim.run(until=ms(600))
        frontier_at_restart = max(r.ledger.last_executed
                                  for r in deployment.replicas)
        deployment.sim.run(until=seconds(2.0))

        rejoined = deployment.replica(crashed)
        # One recovery for the restart itself; the lag trigger may legally
        # run further catch-up rounds if the frontier outran the first pass.
        assert rejoined.stats.recoveries_started >= 1
        assert (rejoined.stats.recoveries_completed
                == rejoined.stats.recoveries_started)
        assert not rejoined.recovering

        # It caught up past everything decided while it was down and kept
        # executing new instances after the rejoin.
        assert rejoined.ledger.last_executed > frontier_at_restart
        others = [r for r in deployment.replicas if r.replica_id != crashed]
        assert rejoined.ledger.last_executed >= min(
            r.ledger.last_executed for r in others) - 4

        # Executed-ledger digests match the honest majority at every recent
        # sequence number all replicas retain.
        common = min(r.ledger.last_executed for r in deployment.replicas)
        digests = {r.executed_digest(common) for r in deployment.replicas
                   if r.executed_digest(common) is not None}
        assert len(digests) == 1
        assert deployment.safety.consensus_safe
        assert deployment.safety.rsm_safe

        # Participation, not just observation: its post-rejoin votes appear
        # in the live instances of its peers.  (Flexi-ZZ has no Prepare
        # phase — replicas participate by executing speculatively and
        # replying, which the execution assertions above already cover.)
        if protocol != "flexi-zz":
            assert any(crashed in inst.prepares
                       for other in others for inst in other.instances.values())

    def test_recovery_without_durable_store_uses_peer_transfer(self):
        config = recovery_config(
            "minbft", recovery=RecoveryConfig(durable_store=False))
        schedule = FaultSchedule((crash_at(2, ms(300)), restart_at(2, ms(600))))
        deployment = Deployment(config, fault_schedule=schedule)
        assert deployment.stores == [None, None, None]
        deployment.start_clients()
        deployment.sim.run(until=seconds(2.0))
        rejoined = deployment.replica(2)
        assert rejoined.stats.recoveries_completed >= 1
        assert rejoined.stats.log_fill_batches_applied > 0
        assert deployment.safety.consensus_safe

    def test_fsync_latency_prices_durability(self):
        """A slower disk lowers throughput: the fsync sits on the path of
        messages that follow a durable write."""
        fast = Deployment(recovery_config("flexi-bft"))
        fast_result = fast.run_until_target(target_requests=120)
        slow = Deployment(recovery_config(
            "flexi-bft", recovery=RecoveryConfig(fsync_latency_us=ms(2.0))))
        slow_result = slow.run_until_target(target_requests=120)
        assert (slow_result.metrics.mean_latency_ms
                > fast_result.metrics.mean_latency_ms)

    def test_partition_heal_triggers_lag_recovery(self):
        schedule = FaultSchedule((
            partition_at((3,), ms(200), name="isolate"),
            heal_at(ms(600), name="isolate"),
        ))
        deployment = Deployment(recovery_config("flexi-bft"),
                                fault_schedule=schedule)
        deployment.start_clients()
        deployment.sim.run(until=seconds(1.5))
        lagged = deployment.replica(3)
        assert lagged.stats.recoveries_completed >= 1
        assert lagged.ledger.last_executed >= min(
            r.ledger.last_executed for r in deployment.replicas
            if r.replica_id != 3) - 4
        assert deployment.safety.consensus_safe


class TestRestartRollback:
    def test_volatile_counter_restart_rollback_flagged(self):
        report = run_restart_rollback_attack(SGX_ENCLAVE_COUNTER)
        assert report.attack == "restart"
        assert report.rollback_succeeded          # the counter reset to zero
        assert report.safety_violated             # flagged by the monitor
        assert report.conflicting_digests_at_seq1 == 2

    def test_persistent_counter_restart_rollback_defeated(self):
        report = run_restart_rollback_attack(ROLLBACK_PROTECTED_COUNTER)
        assert not report.rollback_succeeded      # the counter resumed
        assert not report.safety_violated
        assert report.conflicting_digests_at_seq1 == 1


class TestByzantineResistantTransfer:
    def test_forged_log_fill_needs_f_plus_1_vouchers(self):
        """A self-consistent but fabricated LogFill entry from one peer is
        buffered, not executed; a second voucher (f + 1 = 2) releases it."""
        from repro.common.types import RequestId
        from repro.execution.state_machine import Operation
        from repro.protocols.messages import (
            ClientRequest, LogFill, LogFillEntry, RequestBatch)

        deployment = Deployment(recovery_config("minbft"))
        rejoiner = deployment.replica(2)
        rejoiner.begin_recovery()
        forged = RequestBatch(requests=(ClientRequest(
            request_id=RequestId(client="attacker", number=1),
            operations=(Operation(action="write", key="user1", value="evil"),)),))
        entry = LogFillEntry(seq=1, view=0, batch=forged,
                             batch_digest=forged.digest())
        fill = LogFill(replica=0, entries=(entry,))

        rejoiner.on_log_fill(fill, source="replica-0")
        assert rejoiner.ledger.last_executed == 0  # one voucher is not enough
        rejoiner.on_log_fill(fill, source="replica-0")
        assert rejoiner.ledger.last_executed == 0  # re-sending is not a 2nd vote
        rejoiner.on_log_fill(LogFill(replica=1, entries=(entry,)),
                             source="replica-1")
        assert rejoiner.ledger.last_executed == 1  # f + 1 distinct vouchers

    def test_certificate_votes_must_be_signed_by_their_claimed_replicas(self):
        """One peer signing f+1 votes with its own key is not a certificate."""
        from repro.protocols.messages import Checkpoint, CheckpointReply

        deployment = Deployment(recovery_config("minbft"))
        rejoiner = deployment.replica(2)
        byzantine = deployment.replica(0)
        state_digest = b"\x42" * 32
        forged_votes = tuple(
            byzantine.signed(Checkpoint(seq=20, state_digest=state_digest,
                                        replica=claimed))
            for claimed in (0, 1))
        reply = CheckpointReply(
            replica=0, checkpoint_seq=20, state_digest=state_digest,
            last_executed=20, view=0, snapshot={}, certificate=forged_votes)
        assert not rejoiner._certificate_valid(reply)
        # The same votes signed by their actual claimed replicas do verify.
        honest_votes = tuple(
            deployment.replica(claimed).signed(
                Checkpoint(seq=20, state_digest=state_digest, replica=claimed))
            for claimed in (0, 1))
        assert rejoiner._certificate_valid(
            CheckpointReply(replica=0, checkpoint_seq=20,
                            state_digest=state_digest, last_executed=20,
                            view=0, snapshot={}, certificate=honest_votes))

    def test_schedule_counts_static_faults_against_f(self):
        """A scheduled crash on top of a statically crashed replica exceeds f."""
        config = recovery_config("flexi-bft").with_updates(
            faults=FaultConfig(crashed=(1,)))
        schedule = FaultSchedule((crash_at(2, ms(10)), restart_at(2, ms(20))))
        with pytest.raises(ConfigurationError):
            Deployment(config, fault_schedule=schedule)

    def test_single_peer_cannot_inflate_view_or_target(self):
        from repro.protocols.messages import CheckpointReply
        from repro.recovery import StateTransferSession

        session = StateTransferSession(f=1, started_at=0.0)
        liar = CheckpointReply(replica=0, checkpoint_seq=0, state_digest=b"",
                               last_executed=10**9, view=10**9)
        session.add_reply(0, liar, certified=False)
        assert session.target_view == 0
        assert not session.caught_up(0)  # no f+1 target yet -> keep going
        honest = CheckpointReply(replica=1, checkpoint_seq=0, state_digest=b"",
                                 last_executed=40, view=3)
        session.add_reply(1, honest, certified=False)
        # The adopted values are what f + 1 repliers vouch for, i.e. the
        # honest replica's, not the liar's.
        assert session.target_view == 3
        assert session.target_seq == 40
        assert session.caught_up(40)


class TestScheduleValidationAndSharding:
    def test_schedule_rejects_more_than_f_down(self):
        schedule = FaultSchedule((crash_at(1, ms(10)), crash_at(2, ms(20))))
        with pytest.raises(ConfigurationError):
            Deployment(recovery_config("flexi-bft"), fault_schedule=schedule)

    def test_sharded_schedules_address_replicas_per_group(self):
        base = recovery_config("flexi-bft", clients=8)
        config = ShardedConfig(base=base, num_shards=2, num_clients=16)
        schedules = {1: FaultSchedule((crash_at(3, ms(200)),
                                       restart_at(3, ms(500))))}
        deployment = ShardedDeployment(config, fault_schedules=schedules)
        deployment.start_clients()
        deployment.sim.run(until=seconds(1.5))
        untouched = deployment.group(0).replica(3)
        rejoined = deployment.group(1).replica(3)
        assert untouched.stats.recoveries_started == 0
        assert rejoined.stats.recoveries_completed == 1
        assert all(g.safety.consensus_safe for g in deployment.groups)
