"""The stall watchdog turns a wedged live run into a diagnosed failure.

A PBFT group with two of four replicas crashed (no fault schedule — the
crashes simply happen before the run) cannot assemble a 2f+1 quorum, so a
live run makes zero progress.  Before this PR that meant silently burning
the whole wall-clock cap and dying with an anonymous timeout; now the
watchdog fires early, snapshots the deployment, and the run raises a typed
:class:`StallError` naming the crashed replica with its queue/view state
attached.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.common.errors import StallError
from repro.obsv import ObservabilityConfig, snapshot_diagnostics, write_diagnostics
from repro.runtime.experiments import ExperimentScale, build_config
from repro.runtime.spec import DeploymentSpec

_SCALE = ExperimentScale(
    name="stall-test", f=1, num_clients=4, batch_size=2,
    warmup_batches=1, measured_batches=2, worker_threads=2,
    max_sim_seconds=30.0)

#: the watchdog must fire well inside this cap — that is the point.
_CAP_US = 10_000_000.0
_STALL_US = 300_000.0


def build_live_deployment(observe, backend="live"):
    spec = DeploymentSpec(build_config("pbft", _SCALE), backend=backend,
                          observe=observe)
    return spec.build()


@pytest.mark.timeout(60)
class TestStalledLiveRun:
    def run_stalled(self):
        observe = ObservabilityConfig(stall_after_us=_STALL_US)
        deployment = build_live_deployment(observe)
        try:
            deployment.crash_replica(0)
            deployment.crash_replica(1)
            started = time.monotonic()
            with pytest.raises(StallError) as excinfo:
                deployment.run_until_target(max_sim_time_us=_CAP_US)
            elapsed = time.monotonic() - started
        finally:
            deployment.close()
        return excinfo.value, elapsed

    def test_watchdog_names_a_crashed_replica_before_the_cap(self):
        error, elapsed = self.run_stalled()
        assert error.suspect in {"replica-0", "replica-1"}
        # Fired on the stall threshold, nowhere near the 10 s wall cap.
        assert elapsed < 5.0
        bundle = error.diagnostics
        assert "crashed" in bundle["suspect_reason"]
        assert bundle["kernel"]["heap_size"] > 0
        assert bundle["kernel"]["pending_events"] > 0
        assert isinstance(bundle.get("asyncio_tasks"), list)

    def test_bundle_captures_queue_and_view_state(self):
        error, _ = self.run_stalled()
        replicas = error.diagnostics["health"]["replicas"]
        by_name = {r["name"]: r for r in replicas}
        assert set(by_name) == {f"replica-{i}" for i in range(4)}
        crashed = [r for r in replicas if not r["active"]]
        assert len(crashed) == 2
        for replica in replicas:
            assert replica["view"] >= 0
            assert "worker_queue" in replica
            assert "pending_requests" in replica
            assert replica["last_executed"] == 0  # nothing ever committed
        aggregate = error.diagnostics["aggregate"]
        assert aggregate["replicas"] == 4
        assert aggregate["active"] == 2
        # Every client is wedged on an outstanding request.
        outstanding = [c for c in error.diagnostics["clients"]
                       if c.get("outstanding")]
        assert outstanding

    def test_traced_stall_flushes_the_trace_ring_into_the_bundle(self):
        observe = ObservabilityConfig(trace=True, stall_after_us=_STALL_US)
        deployment = build_live_deployment(observe)
        try:
            deployment.crash_replica(0)
            deployment.crash_replica(1)
            with pytest.raises(StallError) as excinfo:
                deployment.run_until_target(max_sim_time_us=_CAP_US)
        finally:
            deployment.close()
        bundle = excinfo.value.diagnostics
        tail = bundle["trace_tail"]
        assert tail, "traced stall bundle carries no trace events"
        # The tail is the newest ring slice: dict-shaped events, newest last,
        # whose kinds agree with the exact per-kind counters.
        assert all(event["kind"] for event in tail)
        times = [event["time_us"] for event in tail]
        assert times == sorted(times)
        assert set(event["kind"] for event in tail) <= set(
            bundle["trace_counts"])
        assert bundle["trace_counts"]["replica.crash"] == 2
        assert bundle["trace_dropped"] >= 0

    def test_untraced_stall_bundle_has_no_trace_tail(self):
        error, _ = self.run_stalled()
        assert "trace_tail" not in error.diagnostics

    def test_bundle_round_trips_through_write_diagnostics(self, tmp_path):
        error, _ = self.run_stalled()
        path = tmp_path / "diagnostics" / "stall.json"
        write_diagnostics(error.diagnostics, path)
        loaded = json.loads(path.read_text())
        assert loaded["suspect"] == error.suspect
        assert loaded["aggregate"]["active"] == 2


@pytest.mark.timeout(60)
class TestTcpConnectionSnapshots:
    def test_bundle_includes_peer_addresses_on_tcp(self):
        observe = ObservabilityConfig(collect_health=True)
        deployment = build_live_deployment(observe, backend="live-tcp")
        try:
            deployment.run_until_target(target_requests=8,
                                        max_sim_time_us=_CAP_US)
            bundle = snapshot_diagnostics(deployment, reason="post-run probe")
        finally:
            deployment.close()
        (connections,) = bundle["connections"]
        assert connections["transport"] == "TcpTransport"
        assert connections["port"] > 0
        open_peers = [state for state in connections["destinations"].values()
                      if state["state"] == "open"]
        assert open_peers, "no open TCP connection recorded"
        for state in open_peers:
            host, _, port = state["peer"].rpartition(":")
            assert host == "127.0.0.1"
            assert int(port) > 0
        assert connections["accepted_peers"]


@pytest.mark.timeout(60)
class TestDiagCli:
    def test_repro_diag_writes_a_bundle(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "diag.json"
        code = main(["diag", "--protocol", "pbft", "--seconds", "5",
                     "--out", str(out)])
        assert code == 0, capsys.readouterr().out
        bundle = json.loads(out.read_text())
        assert bundle["reason"] == "manual probe"
        assert bundle["aggregate"]["active"] == 4
        assert len(bundle["health"]["replicas"]) == 4
