"""End-to-end integration of the TCP transport and live sharded scenarios.

The TCP backend runs the unchanged protocol stack with every message crossing
a real localhost socket as a versioned binary frame (the canonical wire
codec in :mod:`repro.net.wire`); the live sharded
deployments run multiple consensus groups on one event loop (queue or TCP
transport) driven by cross-shard clients.  Every reply a client accepts is
HMAC-verified, so these tests certify authenticity end to end, not just
liveness.

Real time is involved; the ``timeout`` marks turn event-loop hangs into
prompt failures.
"""

from __future__ import annotations

import pytest

from repro.net.tcp import TcpTransport
from repro.realtime import (
    LiveShardedDeployment,
    ReplyVerifier,
    run_live_point,
)
from repro.runtime.experiments import ExperimentScale, build_config
from repro.runtime.spec import DeploymentSpec
from repro.sharding.config import ShardedConfig

_SCALE = ExperimentScale(
    name="tcp-test", f=1, num_clients=6, batch_size=4,
    warmup_batches=1, measured_batches=4, worker_threads=4,
    max_sim_seconds=30.0)


@pytest.mark.timeout(60)
@pytest.mark.parametrize("protocol", ["pbft", "flexi-bft"])
def test_tcp_backend_end_to_end(protocol):
    config = build_config(protocol, _SCALE)
    deployment = DeploymentSpec(config, backend="live-tcp").build()
    try:
        verifier = ReplyVerifier(deployment)
        target = 16
        result = deployment.run_until_target(target_requests=target)
        assert deployment.metrics.completed_count == target
        assert result.consensus_safe and result.rsm_safe
        quorum = deployment.spec.reply_policy.fast_quorum(deployment.n,
                                                          deployment.f)
        assert verifier.verified >= target * quorum
        # Frames really crossed sockets: the transport bound a port and
        # delivered what was sent (minus whatever teardown dropped).
        assert isinstance(deployment.network, TcpTransport)
        assert deployment.network.port is not None
        assert deployment.network.stats.messages_delivered > 0
    finally:
        deployment.close()


@pytest.mark.timeout(60)
def test_tcp_rows_match_live_queue_rows_schema():
    config = build_config("minbft", _SCALE)
    tcp_result = run_live_point(config, target_requests=8, backend="live-tcp")
    queue_result = run_live_point(config, target_requests=8, backend="live")
    assert set(tcp_result.as_row()) == set(queue_result.as_row())


@pytest.mark.timeout(90)
@pytest.mark.parametrize("backend", ["live", "live-tcp"])
def test_live_sharded_deployment_end_to_end(backend):
    config = build_config("flexi-bft", _SCALE, num_clients=8)
    with LiveShardedDeployment(ShardedConfig(base=config, num_shards=2),
                               backend=backend) as deployment:
        verifier = ReplyVerifier(deployment)
        target = 16
        result = deployment.run_until_target(target_requests=target)
        assert deployment.metrics.completed_count >= target
        assert result.consensus_safe and result.rsm_safe
        # Both groups served traffic.
        assert all(count > 0 for count in result.per_shard_completed.values())
        assert verifier.verified > 0
        # Groups are transport-isolated: two distinct transport instances
        # (on TCP, two distinct server ports).
        networks = [group.network for group in deployment.groups]
        assert networks[0] is not networks[1]
        if backend == "live-tcp":
            ports = {network.port for network in networks}
            assert None not in ports and len(ports) == 2


@pytest.mark.timeout(90)
def test_live_recovery_scenario_restarts_a_real_replica():
    from repro.perf.scenarios import scenario_live_recovery

    rows = scenario_live_recovery(None)  # fixed sizing ignores the scale
    assert len(rows) == 2
    for row in rows:
        assert row["recovered"], f"{row['protocol']} never completed recovery"
        assert row["consensus_safe"]
        assert row["completed_requests"] > 0
        # State transfer really moved batches from peers to the restarted
        # incarnation over the live transport.
        assert row["transfer_batches"] > 0


@pytest.mark.timeout(60)
def test_forged_reply_fails_a_live_run():
    """The verifier turns a forged reply into a loud run failure."""
    from repro.common.errors import InvalidSignature
    from repro.common.types import RequestId
    from repro.crypto.keystore import KeyStore
    from repro.execution.state_machine import OperationResult
    from repro.protocols.messages import Response, with_signature

    config = build_config("pbft", _SCALE)
    deployment = DeploymentSpec(config, backend="live").build()
    try:
        ReplyVerifier(deployment)
        # The forger claims a replica identity but holds different key
        # material (a different keystore seed), like a byzantine network.
        forger = KeyStore(seed=1234).register(deployment.replica_names[0])
        client = deployment.clients[0]

        def inject_forged():
            forged = Response(
                request_id=RequestId(client=client.name, number=1),
                seq=1, view=0, replica=0,
                result=OperationResult(ok=True),
                result_digest=b"\x00" * 32)
            forged = with_signature(forged, forger.sign(forged.signed_part()))
            deployment.network.send(deployment.replica_names[0],
                                    client.name, forged)

        deployment.sim.schedule(20_000.0, inject_forged)
        with pytest.raises(InvalidSignature):
            deployment.run_until_target(target_requests=200)
    finally:
        deployment.close()
