"""Matrix runner integration: resumable results and determinism.

Runs a tiny simulated matrix twice against the same results directory and
pins the resume contract: a second run executes zero cells, a corrupted
result file re-runs exactly that cell, and resumed rows are byte-identical
to executed ones (simulated cells are a pure function of their spec).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.matrix import MatrixRunner, MatrixSpec, load_results


@pytest.fixture
def tiny_cells():
    spec = MatrixSpec(name="tiny", protocols=("minbft", "flexi-bft"),
                      client_counts=(10,), warmup_batches=1,
                      measured_batches=3)
    return spec.cells()


def test_second_run_resumes_every_cell(tmp_path, tiny_cells):
    runner = MatrixRunner(results_dir=str(tmp_path))
    first = runner.run(tiny_cells)
    assert first.executed == len(tiny_cells) and first.resumed == 0

    second = MatrixRunner(results_dir=str(tmp_path)).run(tiny_cells)
    assert second.executed == 0
    assert second.resumed == len(tiny_cells)
    # Resumed rows are exactly the executed rows, not re-measurements.
    assert second.rows == first.rows
    # Simulated runs are deterministic: re-running from scratch reproduces
    # the persisted row digests bit for bit.
    fresh = MatrixRunner(results_dir=None).run(tiny_cells)
    assert [o.payload["row_digest"] for o in fresh] == \
        [o.payload["row_digest"] for o in first]


def test_corrupted_result_reruns_only_that_cell(tmp_path, tiny_cells):
    runner = MatrixRunner(results_dir=str(tmp_path))
    first = runner.run(tiny_cells)
    victim = first.outcomes[0]

    # Unparseable JSON: only the victim re-runs.
    with open(victim.path, "w", encoding="utf-8") as handle:
        handle.write("{ not json")
    second = runner.run(tiny_cells)
    executed = [o.cell.content_hash for o in second if not o.resumed]
    assert executed == [victim.cell.content_hash]
    # ... and the rewritten file resumes cleanly afterwards.
    assert runner.run(tiny_cells).executed == 0

    # A payload whose recorded hash disagrees with its cell is corruption
    # too (e.g. a file renamed by hand).
    payload = json.loads(open(victim.path, encoding="utf-8").read())
    payload["cell_hash"] = "0" * 16
    with open(victim.path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    third = runner.run(tiny_cells)
    assert [o.cell.content_hash for o in third if not o.resumed] == \
        [victim.cell.content_hash]


def test_payload_schema_and_load_results(tmp_path, tiny_cells):
    runner = MatrixRunner(results_dir=str(tmp_path))
    result = runner.run(tiny_cells)
    for outcome in result:
        assert os.path.basename(outcome.path) == \
            f"{outcome.cell.content_hash}.json"
        payload = outcome.payload
        assert payload["version"] == 1
        assert payload["cell_hash"] == outcome.cell.content_hash
        assert payload["row"]["cell"] == outcome.cell.content_hash
        assert payload["row_digest"]  # simulated cells carry a digest
        assert payload["wall_seconds"] >= 0
    loaded = load_results(str(tmp_path))
    assert {p["cell_hash"] for p in loaded} == \
        {c.content_hash for c in tiny_cells}


def test_traced_cell_folds_span_summary_into_the_payload_only(tmp_path,
                                                              tiny_cells):
    import dataclasses

    from repro.matrix import Cell, collate_payloads
    from repro.obsv import ObservabilityConfig

    plain_cell = tiny_cells[0]
    traced_cell = Cell(
        spec=dataclasses.replace(plain_cell.spec,
                                 observe=ObservabilityConfig(trace=True)),
        axes=plain_cell.axes, label=plain_cell.label)
    # Observability is excluded from the content hash: a traced cell
    # resumes the untraced cell's persisted result and vice versa.
    assert traced_cell.content_hash == plain_cell.content_hash

    runner = MatrixRunner(results_dir=None)
    (traced,) = runner.run([traced_cell]).outcomes
    (plain,) = runner.run([plain_cell]).outcomes
    # The span aggregates land in the payload, never the row: the traced
    # row (and its determinism digest) is byte-identical to the untraced
    # one.
    assert "span_summary" not in plain.payload
    summary = traced.payload["span_summary"]
    assert summary["span_requests"] > 0
    assert summary["span_total_p99_us"] >= summary["span_total_p50_us"] >= 0
    assert all(not name.startswith("span_") for name in traced.row)
    assert traced.row == plain.row
    assert traced.payload["row_digest"] == plain.payload["row_digest"]

    # Collation merges the payload-only columns back into the curve points.
    (series,) = collate_payloads([traced.payload], axis="clients")
    (point,) = series.points
    assert point.columns["span_requests"] == summary["span_requests"]


def test_fault_cell_runs_its_fixed_horizon(tmp_path):
    from repro.matrix import FaultPlan

    spec = MatrixSpec(
        name="tiny-faults", protocols=("minbft",), client_counts=(12,),
        fault_plans=(FaultPlan("crash-restart", crash_s=0.1, restart_s=0.2,
                               end_s=0.45),))
    (cell,) = spec.cells()
    result = MatrixRunner(results_dir=str(tmp_path)).run([cell])
    row = result.rows[0]
    assert row["fault"] == "crash-restart"
    assert row["completed_requests"] > 0
    assert row["consensus_safe"] is True
    # The horizon came from the hashed spec, not a runner-side parameter.
    assert cell.fixed_horizon_us == pytest.approx(450_000.0)


def test_unknown_matrix_name_is_a_configuration_error():
    from repro.matrix import matrix_cells

    with pytest.raises(ConfigurationError):
        matrix_cells("definitely-not-a-matrix")
