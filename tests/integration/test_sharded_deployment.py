"""Integration tests for sharded multi-group deployments."""

import pytest

from repro.common.config import (
    DeploymentConfig,
    ExperimentConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.common.types import ms
from repro.sharding import ShardedConfig, ShardedDeployment


def sharded_config(protocol="flexi-bft", num_shards=2, clients=24, batch=5,
                   ops_per_request=1, records=200, seed=5) -> ShardedConfig:
    base = DeploymentConfig(
        protocol=protocol, f=1,
        workload=WorkloadConfig(num_clients=clients, records=records,
                                requests_per_client_message=ops_per_request),
        protocol_config=ProtocolConfig(
            batch_size=batch, worker_threads=4, checkpoint_interval=50,
            request_timeout_us=ms(60.0), view_change_timeout_us=ms(60.0)),
        experiment=ExperimentConfig(warmup_batches=1, measured_batches=8,
                                    seed=seed),
    )
    return ShardedConfig(base=base, num_shards=num_shards, num_clients=clients)


def executed_keys(group) -> set:
    """Keys of every operation a group's initial primary has run through consensus."""
    keys = set()
    for inst in group.replicas[0].instances.values():
        if inst.executed and inst.batch is not None:
            for request in inst.batch.requests:
                keys.update(op.key for op in request.operations)
    return keys


class TestShardedRuns:
    @pytest.mark.parametrize("protocol", ["pbft", "minbft", "flexi-bft", "flexi-zz"])
    def test_two_shards_complete_target_safely(self, protocol):
        deployment = ShardedDeployment(sharded_config(protocol))
        result = deployment.run_until_target(target_requests=80)
        assert result.metrics.global_metrics.completed_requests >= 60
        assert result.consensus_safe
        assert result.rsm_safe

    def test_every_shard_serves_traffic(self):
        deployment = ShardedDeployment(sharded_config(num_shards=4, clients=40))
        result = deployment.run_until_target(target_requests=160)
        assert all(count > 0 for count in result.per_shard_completed.values())

    def test_operations_only_execute_on_their_owning_shard(self):
        deployment = ShardedDeployment(sharded_config(num_shards=4, clients=40))
        deployment.run_until_target(target_requests=160)
        for shard, group in enumerate(deployment.groups):
            keys = executed_keys(group)
            assert keys, f"shard {shard} executed nothing"
            assert all(deployment.shard_of(key) == shard for key in keys)

    def test_cross_shard_requests_merge_responses(self):
        deployment = ShardedDeployment(
            sharded_config(num_shards=4, clients=12, ops_per_request=4))
        result = deployment.run_until_target(target_requests=60)
        assert result.metrics.global_metrics.completed_requests >= 48
        multi = sum(c.stats.multi_shard_requests for c in deployment.clients)
        subs = sum(c.stats.sub_requests for c in deployment.clients)
        completed = sum(c.stats.completed for c in deployment.clients)
        assert multi > 0
        assert subs > completed  # logical requests fan out into sub-requests
        # Nothing remains half-merged once a client reports completion.
        for client in deployment.clients:
            if client.stats.completed == client.stats.submitted:
                assert not client.outstanding_shards

    def test_lane_clients_reject_start(self):
        """Lanes have no workload of their own; only the coordinator drives them."""
        from repro.common.errors import ConfigurationError

        deployment = ShardedDeployment(sharded_config())
        with pytest.raises(ConfigurationError):
            deployment.clients[0].lanes[0].start()

    def test_lane_double_submit_rejected(self):
        """The closed loop keeps one sub-request outstanding per lane."""
        from repro.common.errors import SimulationError
        from repro.execution.state_machine import Operation

        deployment = ShardedDeployment(sharded_config())
        lane = deployment.clients[0].lanes[0]
        operations = (Operation(action="read", key="user1"),)
        lane.submit(operations)
        with pytest.raises(SimulationError):
            lane.submit(operations)

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            deployment = ShardedDeployment(sharded_config())
            result = deployment.run_until_target(target_requests=80)
            results.append((result.events, result.messages_sent,
                            result.metrics.global_metrics.completed_requests,
                            result.metrics.as_row()))
        assert results[0] == results[1]

    def test_groups_are_fault_isolated(self):
        """A crashed non-primary replica in shard 0 leaves other shards untouched."""
        deployment = ShardedDeployment(sharded_config(num_shards=2, clients=24))
        deployment.groups[0].replicas[3].crash()
        result = deployment.run_until_target(target_requests=80)
        assert result.consensus_safe
        assert result.metrics.global_metrics.completed_requests >= 60
        assert result.per_shard_completed[1] > 0

    def test_single_shard_matches_regular_deployment_shape(self):
        deployment = ShardedDeployment(sharded_config(num_shards=1))
        result = deployment.run_until_target(target_requests=40)
        assert result.metrics.num_shards == 1
        assert result.metrics.imbalance == pytest.approx(1.0)
        assert result.metrics.aggregate_throughput_tx_s == pytest.approx(
            result.metrics.shard_metrics[0].throughput_tx_s)

    def test_aggregate_throughput_scales_with_shards(self):
        """The acceptance shape: 1 -> 2 -> 4 shards grows aggregate throughput."""
        aggregates = []
        for shards in (1, 2, 4):
            deployment = ShardedDeployment(
                sharded_config(num_shards=shards, clients=24 * shards, batch=5))
            result = deployment.run_until_target(target_requests=80 * shards)
            aggregates.append(result.metrics.aggregate_throughput_tx_s)
        assert aggregates == sorted(aggregates)
        assert aggregates[-1] > 2.0 * aggregates[0]
