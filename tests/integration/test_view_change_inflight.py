"""Regression tests: a view change releases the primary's in-flight window.

``BaseReplica.enter_view`` must clear ``in_flight`` (protocols/base.py): the
slots belong to consensus instances of the *old* view, which the new primary
may re-propose under the same sequence numbers.  If a view change leaked
those slots, a primary whose window was full when the view changed would
never propose again once leadership returned to it — a total, silent stall.
"""

import pytest

from repro.common.config import (
    DeploymentConfig,
    ExperimentConfig,
    FaultConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.common.types import ms
from repro.runtime import Deployment


def vc_config(protocol="pbft", clients=8, max_outstanding=2) -> DeploymentConfig:
    return DeploymentConfig(
        protocol=protocol, f=1,
        workload=WorkloadConfig(num_clients=clients, records=100),
        protocol_config=ProtocolConfig(
            batch_size=2, max_outstanding=max_outstanding, worker_threads=4,
            checkpoint_interval=50, request_timeout_us=ms(40.0),
            view_change_timeout_us=ms(40.0)),
        experiment=ExperimentConfig(warmup_batches=1, measured_batches=8, seed=5),
    )


class TestEnterViewReleasesSlots:
    def test_full_window_is_cleared_on_view_entry(self):
        deployment = Deployment(vc_config())
        primary = deployment.primary
        primary.in_flight = {1, 2}
        primary.enter_view(1)
        assert primary.in_flight == set()
        assert not primary.in_view_change

    @pytest.mark.parametrize("protocol", ["pbft", "flexi-bft", "minbft"])
    def test_cleared_for_every_protocol_family(self, protocol):
        deployment = Deployment(vc_config(protocol))
        for replica in deployment.replicas:
            replica.in_flight = {7}
            replica.enter_view(replica.view + 1)
            assert replica.in_flight == set()


class TestViewChangeWithRequestsInFlight:
    @pytest.mark.parametrize("protocol", ["pbft", "flexi-bft"])
    def test_progress_resumes_and_window_drains(self, protocol):
        deployment = Deployment(vc_config(protocol))
        primary = deployment.primary
        deployment.start_clients()

        # Run until the primary provably has consensus instances in flight.
        deployment.sim.run(
            until=2_000_000.0,
            stop_when=lambda: (deployment.metrics.completed_count >= 10
                               and len(primary.in_flight) > 0))
        assert len(primary.in_flight) > 0
        before_crash = deployment.metrics.completed_count

        # Kill the primary mid-window: its proposals are now orphaned and the
        # clients' timeouts must drive a view change.
        primary.crash()
        deployment.sim.run(
            until=6_000_000.0,
            stop_when=lambda: deployment.metrics.completed_count >= before_crash + 20)

        survivors = [r for r in deployment.replicas if r.active]
        assert any(r.stats.view_changes_completed > 0 for r in survivors)
        assert all(r.view >= 1 for r in survivors)
        # The system made progress after the view change.
        assert deployment.metrics.completed_count >= before_crash + 20
        assert deployment.safety.consensus_safe

        # Quiesce: stop the clients and let outstanding consensus finish.
        for client in deployment.clients:
            client.stop()
        deployment.sim.run(until=deployment.sim.now + 2_000_000.0)
        # Every window slot ever taken was released — nothing leaked.
        for replica in survivors:
            assert replica.in_flight == set(), replica.name

    @pytest.mark.parametrize("protocol", ["pbft", "flexi-bft"])
    def test_reissued_requests_stay_guarded_after_view_install(self, protocol):
        """The exactly-once window must survive the view install: enter_view's
        stale-instance cleanup runs between reissue and execution, and must
        not erase the guard on the re-proposed requests (else a client resend
        in that window is batched — and executed — a second time)."""
        from repro.common.types import RequestId
        from repro.execution.state_machine import Operation
        from repro.protocols.messages import (ClientRequest, RequestBatch,
                                              ResendRequest, ViewChange)

        deployment = Deployment(vc_config(protocol))
        new_primary = deployment.replica(1)  # primary of view 1
        key = deployment.keystore.register("client-0")
        rid = RequestId(client="client-0", number=1)
        request = ClientRequest(
            request_id=rid,
            operations=(Operation(action="write", key="user1", value="v1"),))
        request = ClientRequest(request_id=rid, operations=request.operations,
                                signature=key.sign(request.signed_part()))
        batch = RequestBatch(requests=(request,))
        # A view-0 batch that prepared but never committed at this replica.
        inst = new_primary.instance(5, 0)
        inst.batch, inst.batch_digest, inst.prepared = batch, batch.digest(), True

        new_primary.initiate_view_change(1)
        for voter in (2, 3):
            vote = deployment.replica(voter).signed(ViewChange(
                new_view=1, replica=voter, last_stable_seq=0, prepared=()))
            new_primary.on_view_change(vote, deployment.replica_names[voter])
        assert new_primary.is_primary and new_primary.view == 1

        # The reissued request survived the stale-instance cleanup...
        assert rid in new_primary.proposed_requests
        assert not new_primary.ledger.executed(5)
        # ...so a resend arriving before it executes is not batched again.
        new_primary.dispatch(ResendRequest(request=request), source="client-0")
        assert all(r.request_id != rid for r in new_primary.pending_requests)

    def test_new_primary_reproposes_orphaned_batches(self):
        """Batches prepared under the old view survive into the new one."""
        deployment = Deployment(vc_config("pbft"))
        primary = deployment.primary
        deployment.start_clients()
        deployment.sim.run(
            until=2_000_000.0,
            stop_when=lambda: (deployment.metrics.completed_count >= 10
                               and len(primary.in_flight) > 0))
        orphaned = set(primary.in_flight)
        primary.crash()
        deployment.sim.run(
            until=6_000_000.0,
            stop_when=lambda: deployment.metrics.completed_count >= 40)
        new_primary = deployment.replica(1)
        assert new_primary.is_primary
        # The orphaned sequence numbers were decided (re-proposed or
        # executed) rather than leaving gaps that block execution forever.
        for seq in orphaned:
            assert new_primary.ledger.last_executed >= seq
