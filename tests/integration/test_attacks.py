"""Integration tests for the Section 5–7 attack scenarios."""

import pytest

from repro.common.config import SGX_ENCLAVE_COUNTER, SGX_PERSISTENT_COUNTER
from repro.core.attacks import (
    run_responsiveness_attack,
    run_rollback_attack,
    run_sequentiality_demo,
    sequential_throughput_bound,
)


class TestResponsiveness:
    """Section 5: weak quorums break client responsiveness in trust-bft."""

    @pytest.fixture(scope="class")
    def minbft_report(self):
        return run_responsiveness_attack("minbft", f=2, duration_s=2.0)

    @pytest.fixture(scope="class")
    def pbft_report(self):
        return run_responsiveness_attack("pbft", f=2, duration_s=2.0)

    def test_minbft_client_never_completes(self, minbft_report):
        assert not minbft_report.client_completed
        assert not minbft_report.responsive

    def test_minbft_consensus_still_commits_at_one_honest_replica(self, minbft_report):
        assert minbft_report.honest_replicas_executed == 1

    def test_minbft_view_change_cannot_gather_enough_votes(self, minbft_report):
        assert minbft_report.view_changes_completed == 0
        assert minbft_report.view_change_votes < minbft_report.f + 1 + 1

    def test_pbft_recovers_and_stays_responsive(self, pbft_report):
        assert pbft_report.client_completed
        assert pbft_report.honest_replicas_executed >= pbft_report.f + 1

    def test_pbft_uses_view_change_to_recover(self, pbft_report):
        assert pbft_report.view_changes_completed >= 1

    def test_reports_record_required_quorums(self, minbft_report, pbft_report):
        assert minbft_report.required_responses == minbft_report.f + 1
        assert pbft_report.required_responses == pbft_report.f + 1


class TestRollback:
    """Section 6: volatile trusted state enables equivocation."""

    def test_volatile_hardware_leads_to_safety_violation(self):
        report = run_rollback_attack(SGX_ENCLAVE_COUNTER)
        assert report.rollback_succeeded
        assert report.safety_violated
        assert report.conflicting_digests_at_seq1 == 2
        assert report.violations

    def test_clients_would_accept_both_conflicting_transactions(self):
        report = run_rollback_attack(SGX_ENCLAVE_COUNTER)
        assert report.responses_for_first >= 2   # f + 1 with f = 1
        assert report.responses_for_second >= 2

    def test_persistent_hardware_defeats_the_attack(self):
        report = run_rollback_attack(SGX_PERSISTENT_COUNTER)
        assert not report.rollback_succeeded
        assert not report.safety_violated
        assert report.conflicting_digests_at_seq1 <= 1


class TestSequentiality:
    """Section 7: trusted counters force sequential consensus."""

    def test_out_of_order_binding_rejected(self):
        report = run_sequentiality_demo()
        assert report.out_of_order_rejected
        assert report.stalled_seq == 1

    def test_parallel_estimate_beats_sequential_bound(self):
        report = run_sequentiality_demo(outstanding=32)
        assert report.parallel_speedup == pytest.approx(32.0)

    def test_bound_formula_matches_paper_example(self):
        # Section 9.9: at 10 ms per access, 10 k tx/s = batch(100) x 1 s / 10 ms.
        assert sequential_throughput_bound(100, 1, 10_000.0) == pytest.approx(10_000.0)

    def test_bound_scales_with_batch_and_phases(self):
        one_phase = sequential_throughput_bound(100, 1, 1_000.0)
        three_phases = sequential_throughput_bound(100, 3, 1_000.0)
        assert one_phase == pytest.approx(3 * three_phases)
