"""Fault-injection integration tests: crashes, view changes, WAN, hardware sweep."""

import pytest

from repro.common.config import (
    DeploymentConfig,
    ExperimentConfig,
    FaultConfig,
    NetworkConfig,
    ProtocolConfig,
    SGX_ENCLAVE_COUNTER,
    WorkloadConfig,
)
from repro.common.types import ms
from repro.runtime import Deployment


def config_with(protocol, f=1, clients=20, batch=5, crashed=(), regions=("san-jose",),
                hardware=SGX_ENCLAVE_COUNTER, request_timeout_ms=60.0, seed=5):
    return DeploymentConfig(
        protocol=protocol, f=f, trusted_hardware=hardware,
        network=NetworkConfig(region_names=regions),
        workload=WorkloadConfig(num_clients=clients, records=100),
        protocol_config=ProtocolConfig(
            batch_size=batch, worker_threads=4, checkpoint_interval=50,
            request_timeout_us=ms(request_timeout_ms),
            view_change_timeout_us=ms(request_timeout_ms)),
        faults=FaultConfig(crashed=crashed),
        experiment=ExperimentConfig(warmup_batches=1, measured_batches=8, seed=seed),
    )


class TestNonPrimaryCrash:
    @pytest.mark.parametrize("protocol", ["pbft", "minbft", "flexi-bft", "flexi-zz"])
    def test_quorum_protocols_survive_one_crash(self, protocol):
        config = config_with(protocol)
        n = Deployment(config).n
        config = config_with(protocol, crashed=(n - 1,))
        result = Deployment(config).run_until_target(target_requests=40)
        assert result.metrics.completed_requests >= 32
        assert result.consensus_safe

    def test_flexi_zz_stays_on_fast_path_under_crash(self):
        config = config_with("flexi-zz", crashed=(3,))
        deployment = Deployment(config)
        deployment.run_until_target(target_requests=40)
        assert all(c.stats.certificates_sent == 0 for c in deployment.clients)

    def test_zyzzyva_falls_back_to_slow_path_under_crash(self):
        config = config_with("zyzzyva", crashed=(3,), clients=6, batch=2)
        deployment = Deployment(config)
        result = deployment.run_until_target(target_requests=12)
        assert result.metrics.completed_requests >= 9
        assert sum(c.stats.certificates_sent for c in deployment.clients) > 0

    def test_minzz_falls_back_to_slow_path_under_crash(self):
        config = config_with("minzz", crashed=(2,), clients=6, batch=2)
        deployment = Deployment(config)
        result = deployment.run_until_target(target_requests=12)
        assert result.metrics.completed_requests >= 9
        assert sum(c.stats.certificates_sent for c in deployment.clients) > 0

    def test_crash_degrades_speculative_all_reply_protocols_more(self):
        """Figure 7: Flexi-ZZ keeps its latency, MinZZ/Zyzzyva pay extra round trips."""
        flexi = Deployment(config_with("flexi-zz", crashed=(3,), clients=10)) \
            .run_until_target(target_requests=30)
        minzz = Deployment(config_with("minzz", crashed=(2,), clients=10)) \
            .run_until_target(target_requests=30)
        assert flexi.metrics.mean_latency_ms < minzz.metrics.mean_latency_ms


class TestPrimaryCrashViewChange:
    @pytest.mark.parametrize("protocol", ["pbft", "flexi-bft", "flexi-zz"])
    def test_primary_crash_triggers_view_change_and_progress(self, protocol):
        config = config_with(protocol, clients=8, batch=2, request_timeout_ms=40.0)
        deployment = Deployment(config)
        deployment.replicas[0].crash()
        deployment.start_clients()
        deployment.sim.run(until=2_000_000.0,
                           stop_when=lambda: deployment.metrics.completed_count >= 16)
        assert deployment.metrics.completed_count >= 16
        active_views = {r.view for r in deployment.replicas if r.active}
        assert max(active_views) >= 1
        assert deployment.safety.consensus_safe


class TestWanDeployment:
    def test_wan_latency_increases_with_regions(self):
        local = Deployment(config_with("flexi-zz", clients=10)) \
            .run_until_target(target_requests=30)
        wan = Deployment(config_with("flexi-zz", clients=10,
                                     regions=("san-jose", "ashburn", "sydney"))) \
            .run_until_target(target_requests=30)
        assert wan.metrics.mean_latency_ms > local.metrics.mean_latency_ms
        assert wan.consensus_safe

    def test_latency_bounded_by_quorum_not_by_all_regions(self):
        """With 6 regions, quorums bound latency to a couple of WAN hops.

        The paper observes that latency stays roughly constant as regions are
        added because quorums never wait for the farthest replicas; here we
        check latency stays within a few intercontinental round trips rather
        than accumulating across all six regions.
        """
        config = config_with("flexi-bft", f=1, clients=10,
                             regions=("san-jose", "ashburn", "sydney",
                                      "sao-paulo", "montreal", "marseille"))
        result = Deployment(config).run_until_target(target_requests=30)
        assert result.consensus_safe
        assert result.metrics.p50_latency_ms < 350.0


class TestTrustedHardwareLatency:
    def test_slow_hardware_collapses_trust_bft_throughput(self):
        fast = Deployment(config_with("minbft", clients=20)) \
            .run_until_target(target_requests=60)
        slow_spec = SGX_ENCLAVE_COUNTER.with_latency(ms(10.0))
        slow = Deployment(config_with("minbft", clients=20, hardware=slow_spec)) \
            .run_until_target(target_requests=60)
        assert slow.metrics.throughput_tx_s < fast.metrics.throughput_tx_s / 2

    def test_flexitrust_less_sensitive_to_hardware_latency_than_minbft(self):
        slow_spec = SGX_ENCLAVE_COUNTER.with_latency(ms(5.0))
        flexi = Deployment(config_with("flexi-bft", clients=20, hardware=slow_spec)) \
            .run_until_target(target_requests=60)
        minbft = Deployment(config_with("minbft", clients=20, hardware=slow_spec)) \
            .run_until_target(target_requests=60)
        assert flexi.metrics.throughput_tx_s > minbft.metrics.throughput_tx_s
