"""Causal span reconstruction over the live TCP backend.

The acceptance bar for the tracing layer: on a traced live-tcp run, at
least 95% of client requests reconstruct into *complete* client→reply
spans — submit, reply and completion all present, stitched across real
socket boundaries by the ``FLAG_TRACE`` context block — and each complete
span decomposes into the four latency phases (network, queueing, crypto,
execution).

The incomplete tail is the closed-loop in-flight set: each client has at
most one request outstanding when the run stops, so a high
target-to-client ratio keeps the tail under the gate by construction.

Real time is involved; the ``timeout`` marks turn event-loop hangs into
prompt failures.
"""

from __future__ import annotations

import pytest

from repro.obsv import ObservabilityConfig, analyze_events, analyze_file
from repro.obsv.spans import PHASES, reconstruct_spans
from repro.runtime.experiments import ExperimentScale, build_config
from repro.runtime.spec import DeploymentSpec

_SCALE = ExperimentScale(
    name="trace-span-test", f=1, num_clients=4, batch_size=4,
    warmup_batches=1, measured_batches=4, worker_threads=4,
    max_sim_seconds=30.0)

#: with 4 closed-loop clients and 80 completions, at most 4 spans can be
#: in flight at stop time: worst case 80/84 = 95.2% complete.
_TARGET = 80

_MIN_COMPLETENESS = 0.95


@pytest.mark.timeout(90)
class TestLiveTcpSpans:
    def run_traced(self):
        observe = ObservabilityConfig(trace=True)
        config = build_config("pbft", _SCALE)
        deployment = DeploymentSpec(config, backend="live-tcp",
                                    observe=observe).build()
        try:
            result = deployment.run_until_target(target_requests=_TARGET)
            assert result.consensus_safe and result.rsm_safe
            assert deployment.metrics.completed_count >= _TARGET
            return deployment.tracer
        finally:
            deployment.close()

    def test_95_percent_of_requests_reconstruct_complete_spans(self,
                                                               tmp_path):
        tracer = self.run_traced()
        summary = analyze_events(tracer)
        assert summary.requests >= _TARGET
        assert summary.complete >= _TARGET
        assert summary.completeness >= _MIN_COMPLETENESS, (
            f"only {summary.complete}/{summary.requests} spans complete "
            f"({summary.completeness:.1%}); contexts failed to survive "
            "the socket hop")
        # Every complete span decomposes into all four phases plus total.
        for phase in PHASES:
            stats = summary.phases[phase]
            assert stats["count"] >= summary.complete
            assert stats["p99"] >= stats["p50"] >= 0.0
        # Totals dominate each constituent phase at the median.
        assert summary.phases["total"]["p50"] >= max(
            summary.phases[phase]["p50"]
            for phase in ("network", "queueing", "crypto", "execution"))

        # The JSONL export analyzes identically: what `repro trace analyze`
        # reads off disk is what the in-memory ring said.
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(str(path))
        assert written == len(tracer)
        exported = analyze_file(str(path))
        assert exported.requests == summary.requests
        assert exported.complete == summary.complete
        assert exported.phases == summary.phases

    def test_spans_stitch_across_the_socket_boundary(self):
        tracer = self.run_traced()
        spans = reconstruct_spans(tracer.events())
        complete = [span for span in spans if span.complete]
        assert complete
        for span in complete:
            # Chronology within one request's lifecycle: the client
            # submitted before a replica received, replied, and the reply
            # certificate completed — four different processes' clocks
            # stitched by one trace id.
            assert span.submit_us <= span.reply_us <= span.complete_us
            if span.recv_us is not None:
                assert span.submit_us <= span.recv_us
            assert span.seq >= 1  # the reply named its committed sequence
