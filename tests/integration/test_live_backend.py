"""End-to-end integration of the live asyncio backend.

Runs PBFT (an untrusted 3f+1 protocol) and Flexi-ZZ (a speculative
FlexiTrust protocol with a 2f+1 reply quorum) on the real event loop with
the unchanged replica and client classes, and verifies *every* reply a
client accepts — the signature is genuine HMAC-SHA256, computed and checked
in wall-clock time, so a live run is only meaningful if the replies actually
verify against the replicas' keys.

These tests involve real time; ``pytest-timeout`` (the ``timeout`` marks)
turns an event-loop hang into a prompt failure instead of a stalled run.
"""

from __future__ import annotations

import pytest

from repro.protocols.messages import Response, signed_part_bytes
from repro.realtime import LiveDeployment
from repro.runtime.experiments import ExperimentScale, build_config

#: small sizing: live runs pay real latency and real crypto, so the
#: integration points are kept to a few dozen requests each.
_SCALE = ExperimentScale(
    name="live-test", f=1, num_clients=6, batch_size=4,
    warmup_batches=1, measured_batches=4, worker_threads=4,
    max_sim_seconds=30.0)


class ReplyVerifier:
    """Wraps a client's receive hook to verify every Response signature."""

    def __init__(self, deployment: LiveDeployment) -> None:
        self.keystore = deployment.keystore
        self.replica_names = set(deployment.replica_names)
        self.verified = 0
        for client in deployment.clients:
            client.receive = self._wrap(client.receive)

    def _wrap(self, receive):
        def verified_receive(envelope):
            payload = envelope.payload
            if isinstance(payload, Response):
                assert payload.signature is not None, "unsigned reply"
                assert payload.signature.signer in self.replica_names, (
                    f"reply signed by non-replica {payload.signature.signer!r}")
                # Raises InvalidSignature on a forged or corrupted reply.
                self.keystore.verify_encoded(signed_part_bytes(payload),
                                             payload.signature)
                self.verified += 1
            receive(envelope)
        return verified_receive


@pytest.mark.timeout(60)
@pytest.mark.parametrize("protocol", ["pbft", "flexi-zz"])
def test_live_backend_end_to_end(protocol):
    config = build_config(protocol, _SCALE)
    deployment = LiveDeployment(config)
    try:
        verifier = ReplyVerifier(deployment)
        target = 20
        result = deployment.run_until_target(target_requests=target)
        assert result.metrics.completed_requests > 0
        # The kernel checks the stop condition after every callback (like
        # Simulator.run), so the run stops exactly at the target instead of
        # overshooting by however many completions land in one poll window.
        assert deployment.metrics.completed_count == target
        assert result.consensus_safe
        assert result.rsm_safe
        # Every completion needed a verified reply quorum; at least
        # quorum-many verified replies per completed request must have
        # arrived (f+1 for pbft, 2f+1 for flexi-zz).
        quorum = deployment.spec.reply_policy.fast_quorum(deployment.n,
                                                          deployment.f)
        assert verifier.verified >= target * quorum
        # The live clock really ran: wall-clock time elapsed and events fired.
        assert result.sim_time_s > 0
        assert result.events > 0
        assert result.metrics.throughput_tx_s > 0
    finally:
        deployment.close()


@pytest.mark.timeout(60)
def test_live_backend_rows_match_simulated_schema():
    """Live rows must be drop-in compatible with simulated analysis paths."""
    from repro.runtime.deployment import Deployment

    config = build_config("minbft", _SCALE)
    live = LiveDeployment(config)
    try:
        live_result = live.run_until_target(target_requests=12)
    finally:
        live.close()
    simulated_result = Deployment(config).run_until_target(target_requests=12)
    assert set(live_result.as_row()) == set(simulated_result.as_row())


@pytest.mark.timeout(60)
def test_live_deployment_context_manager_closes_loop():
    config = build_config("pbft", _SCALE)
    with LiveDeployment(config) as deployment:
        deployment.run_until_target(target_requests=8)
        kernel = deployment.kernel
    assert kernel.loop.is_closed()


@pytest.mark.timeout(60)
def test_live_backend_surfaces_receive_errors():
    """A raising receive() must fail the run, not silently partition a node."""
    config = build_config("pbft", _SCALE)
    deployment = LiveDeployment(config)
    try:
        def exploding_receive(envelope):
            raise RuntimeError("injected receive failure")

        deployment.clients[0].receive = exploding_receive
        with pytest.raises(RuntimeError, match="injected receive failure"):
            deployment.run_until_target(target_requests=50)
    finally:
        deployment.close()
