"""End-to-end integration tests: every protocol commits, executes and replies.

Each test builds a small deployment (f = 1), drives it with closed-loop
clients, and checks the paper's Section 2 guarantees: consensus safety, RSM
safety (identical state digests on honest replicas for equal prefixes), and
client progress.
"""

import pytest

from repro.common.config import (
    DeploymentConfig,
    ExperimentConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.protocols import protocol_names
from repro.runtime import Deployment

ALL_PROTOCOLS = sorted(protocol_names())


def small_config(protocol: str, f: int = 1, clients: int = 20, batch: int = 5,
                 seed: int = 3) -> DeploymentConfig:
    return DeploymentConfig(
        protocol=protocol, f=f,
        workload=WorkloadConfig(num_clients=clients, records=100),
        protocol_config=ProtocolConfig(batch_size=batch, worker_threads=4,
                                       checkpoint_interval=10),
        experiment=ExperimentConfig(warmup_batches=1, measured_batches=8,
                                    seed=seed),
    )


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_protocol_completes_requests_and_stays_safe(protocol):
    deployment = Deployment(small_config(protocol))
    result = deployment.run_until_target(target_requests=60)
    assert deployment.metrics.completed_count >= 60
    assert result.metrics.completed_requests >= 48
    assert result.consensus_safe
    assert result.rsm_safe
    assert result.metrics.throughput_tx_s > 0


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_honest_replicas_execute_identical_prefixes(protocol):
    deployment = Deployment(small_config(protocol))
    deployment.run_until_target(target_requests=40)
    executed = [r.ledger.last_executed for r in deployment.replicas]
    common_prefix = min(executed)
    assert common_prefix >= 1
    for seq in range(1, common_prefix + 1):
        digests = {r.ledger.entry(seq).batch_digest for r in deployment.replicas
                   if r.ledger.entry(seq) is not None}
        assert len(digests) == 1


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
def test_clients_receive_enough_matching_replies(protocol):
    deployment = Deployment(small_config(protocol, clients=6))
    deployment.run_until_target(target_requests=24)
    for client in deployment.clients:
        assert client.stats.completed >= 1


@pytest.mark.parametrize("protocol", ["pbft", "minbft", "flexi-bft", "flexi-zz"])
def test_runs_are_deterministic(protocol):
    first = Deployment(small_config(protocol, seed=11)).run_until_target(40)
    second = Deployment(small_config(protocol, seed=11)).run_until_target(40)
    assert first.metrics.throughput_tx_s == pytest.approx(second.metrics.throughput_tx_s)
    assert first.events == second.events
    assert first.messages_sent == second.messages_sent


@pytest.mark.parametrize("protocol", ["pbft", "minbft", "flexi-bft"])
def test_different_seeds_change_schedules_but_not_safety(protocol):
    a = Deployment(small_config(protocol, seed=1)).run_until_target(40)
    b = Deployment(small_config(protocol, seed=2)).run_until_target(40)
    assert a.consensus_safe and b.consensus_safe


class TestTrustedAccessPatterns:
    def test_flexitrust_touches_hardware_once_per_batch_at_primary_only(self):
        deployment = Deployment(small_config("flexi-bft"))
        deployment.run_until_target(target_requests=40)
        primary = deployment.primary
        proposed = primary.stats.batches_proposed
        # One Create plus one AppendF per proposed batch at the primary.
        assert primary.trusted.stats.flexi_appends == proposed
        assert primary.trusted.stats.creates == 1
        for replica in deployment.replicas[1:]:
            assert replica.trusted.stats.total == 0

    def test_minbft_touches_hardware_at_every_replica(self):
        deployment = Deployment(small_config("minbft"))
        deployment.run_until_target(target_requests=40)
        for replica in deployment.replicas:
            assert replica.trusted.stats.counter_appends > 0

    def test_pbft_never_touches_hardware(self):
        deployment = Deployment(small_config("pbft"))
        result = deployment.run_until_target(target_requests=40)
        assert result.trusted_accesses == 0

    def test_pbft_ea_uses_logs_not_counters(self):
        deployment = Deployment(small_config("pbft-ea"))
        deployment.run_until_target(target_requests=40)
        primary = deployment.primary
        assert primary.trusted.stats.log_appends > 0
        assert primary.trusted.stats.counter_appends == 0


class TestSequentialVsParallel:
    def test_sequential_protocols_keep_single_instance_in_flight(self):
        deployment = Deployment(small_config("minbft", clients=40))
        deployment.start_clients()
        max_in_flight = 0

        def sample():
            nonlocal max_in_flight
            max_in_flight = max(max_in_flight, len(deployment.primary.in_flight))
            deployment.sim.schedule(200.0, sample)

        deployment.sim.schedule(200.0, sample)
        deployment.sim.run(until=100_000.0)
        assert max_in_flight <= 1

    def test_parallel_protocols_overlap_instances(self):
        deployment = Deployment(small_config("pbft", clients=60, batch=5))
        deployment.start_clients()
        max_in_flight = 0

        def sample():
            nonlocal max_in_flight
            max_in_flight = max(max_in_flight, len(deployment.primary.in_flight))
            deployment.sim.schedule(100.0, sample)

        deployment.sim.schedule(100.0, sample)
        deployment.sim.run(until=100_000.0)
        assert max_in_flight > 1


class TestCheckpointing:
    @pytest.mark.parametrize("protocol", ["pbft", "minbft", "flexi-bft"])
    def test_checkpoints_become_stable_and_truncate(self, protocol):
        deployment = Deployment(small_config(protocol, clients=30))
        deployment.run_until_target(target_requests=120)
        stable = [r.ledger.stable_checkpoint for r in deployment.replicas]
        assert max(stable) >= 10
