"""Quickstart: a sharded BFT deployment over localhost TCP sockets.

One ``DeploymentSpec`` is the whole story: the same declarative description
builds the same system on the deterministic simulator, on the in-process
asyncio backend, or — as here — on the TCP backend, where every protocol
message crosses a real localhost socket as a length-prefixed frame.  Four
consensus groups share one event loop, cross-shard clients partition their
operations over the groups, and every reply a client accepts is
HMAC-verified against the replicas' keys.

Run with::

    PYTHONPATH=src python examples/live_sharded_tcp.py

or, equivalently, straight from the CLI::

    python -m repro live --backend tcp --sharded --shards 4
"""

from repro.realtime import ReplyVerifier
from repro.runtime.experiments import ExperimentScale, build_config, print_rows
from repro.runtime.spec import DeploymentSpec

# Small sizing: live runs pay real socket transit and real crypto, so a few
# hundred requests complete in about a second.
SCALE = ExperimentScale(
    name="live-sharded-example", f=1, num_clients=12, batch_size=5,
    warmup_batches=2, measured_batches=8, worker_threads=4,
    max_sim_seconds=30.0)


def main() -> None:
    rows = []
    for backend in ("sim", "live", "live-tcp"):
        spec = DeploymentSpec(build_config("flexi-bft", SCALE),
                              backend=backend, num_shards=4)
        deployment = spec.build()
        try:
            verifier = (ReplyVerifier(deployment)
                        if backend != "sim" else None)
            result = deployment.run_until_target()
            row = {"backend": backend}
            row.update(result.as_row())
            if verifier is not None:
                row["replies_verified"] = verifier.verified
            rows.append(row)
        finally:
            deployment.close()
    print_rows("flexi-bft, 4 consensus groups, one spec per backend", rows)

    # The TCP deployment's groups each accepted frames on their own port:
    spec = DeploymentSpec(build_config("minbft", SCALE),
                          backend="live-tcp", num_shards=2)
    deployment = spec.build()
    try:
        deployment.run_until_target(target_requests=60)
        ports = [group.network.port for group in deployment.groups]
        sent = sum(group.network.stats.messages_sent
                   for group in deployment.groups)
        print(f"\nminbft on TCP: 2 groups listening on ports {ports}, "
              f"{sent} messages framed over localhost sockets")
    finally:
        deployment.close()


if __name__ == "__main__":
    main()
