#!/usr/bin/env python3
"""Quickstart: run Flexi-ZZ and Pbft side by side on a small deployment.

Builds a deployment of each protocol (f = 1), drives it with closed-loop YCSB
clients, and prints throughput, latency and how often trusted hardware was
touched — the quantity the FlexiTrust design minimises.

Run with:  python examples/quickstart.py
"""

from repro import DeploymentConfig, DeploymentSpec
from repro.common.config import ExperimentConfig, ProtocolConfig, WorkloadConfig


def run(protocol: str) -> None:
    config = DeploymentConfig(
        protocol=protocol,
        f=1,
        workload=WorkloadConfig(num_clients=120, records=1000),
        protocol_config=ProtocolConfig(batch_size=20, worker_threads=8),
        experiment=ExperimentConfig(warmup_batches=3, measured_batches=15, seed=1),
    )
    deployment = DeploymentSpec(config).build()
    result = deployment.run_until_target()
    metrics = result.metrics
    print(f"{protocol:>10s} | n={deployment.n}  "
          f"throughput={metrics.throughput_tx_s:9.0f} tx/s  "
          f"mean latency={metrics.mean_latency_ms:6.2f} ms  "
          f"trusted accesses={result.trusted_accesses:5d}  "
          f"safe={result.consensus_safe}")


def main() -> None:
    print("protocol   | results (f = 1, 120 closed-loop clients, batch 20)")
    print("-" * 78)
    for protocol in ("pbft", "minbft", "minzz", "flexi-bft", "flexi-zz"):
        run(protocol)
    print("\nFlexiTrust protocols touch trusted hardware once per batch at the")
    print("primary only; trust-bft protocols touch it on every message at every")
    print("replica, and order batches one at a time.")


if __name__ == "__main__":
    main()
