#!/usr/bin/env python3
"""Figure 8: how trusted-hardware access latency shapes protocol choice.

Sweeps the trusted-counter access cost from in-enclave speeds (tens of
microseconds) to TPM territory (tens of milliseconds) and reports the peak
throughput of Flexi-ZZ, MinZZ and MinBFT.  Flexi-ZZ touches the counter once
per consensus at the primary only, so it dominates while accesses are cheap;
once a single access costs milliseconds, every protocol collapses towards the
``batch size / access latency`` bound and the differences vanish — the paper's
argument for why better hardware will make trust-bft attractive again.

Run with:  python examples/trusted_hardware_sweep.py
"""

from repro.common.config import SGX_ENCLAVE_COUNTER
from repro.common.types import ms
from repro.runtime import ExperimentScale, build_config, run_point

SCALE = ExperimentScale(
    name="example", f=1, num_clients=160, batch_size=20,
    warmup_batches=2, measured_batches=10, worker_threads=8)

ACCESS_COSTS_MS = (0.025, 1.0, 2.5, 5.0, 10.0, 30.0)
PROTOCOLS = ("flexi-zz", "minzz", "minbft")


def main() -> None:
    print("Trusted counter access cost sweep (Figure 8)")
    header = "access cost (ms)".ljust(18) + "".join(p.rjust(12) for p in PROTOCOLS)
    print(header)
    print("-" * len(header))
    for access_ms in ACCESS_COSTS_MS:
        hardware = SGX_ENCLAVE_COUNTER.with_latency(ms(access_ms))
        cells = []
        for protocol in PROTOCOLS:
            result = run_point(build_config(protocol, SCALE, hardware=hardware))
            cells.append(f"{result.metrics.throughput_tx_s:11.0f}")
        print(f"{access_ms:<18}" + " ".join(cells))
    print("\nWith fast counters Flexi-ZZ leads; with slow counters every")
    print("protocol is bound by the single serial trusted access per batch.")


if __name__ == "__main__":
    main()
