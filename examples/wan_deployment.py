#!/usr/bin/env python3
"""Figure 6(vi)/(vii): spreading replicas across the paper's six regions.

Deploys Flexi-BFT and MinBFT over 1..6 of the paper's regions (San Jose,
Ashburn, Sydney, Sao Paulo, Montreal, Marseille, used in that order) and
reports throughput and latency.  Quorum-based protocols only wait for the
fastest quorum, so latency is bounded by a couple of WAN hops rather than by
the farthest region.

Run with:  python examples/wan_deployment.py
"""

from repro.net.topology import PAPER_REGIONS
from repro.runtime import ExperimentScale, build_config, run_point

SCALE = ExperimentScale(
    name="example", f=1, num_clients=80, batch_size=10,
    warmup_batches=2, measured_batches=8, worker_threads=8)


def main() -> None:
    print("Wide-area replication across the paper's regions (Figure 6 vi/vii)")
    for protocol in ("flexi-bft", "minbft"):
        print(f"\n{protocol}:")
        print("  regions  throughput (tx/s)  mean latency (ms)")
        for count in range(1, len(PAPER_REGIONS) + 1):
            regions = PAPER_REGIONS[:count]
            result = run_point(build_config(protocol, SCALE, regions=regions))
            print(f"  {count:^7d}  {result.metrics.throughput_tx_s:16.0f}  "
                  f"{result.metrics.mean_latency_ms:17.2f}")
    print("\nLatency jumps when the quorum first needs a remote region and then")
    print("flattens: additional far regions never enter the critical quorum.")


if __name__ == "__main__":
    main()
