#!/usr/bin/env python3
"""Sharded deployment walkthrough: scale-out consensus over a partitioned keyspace.

Builds a sharded Flexi-BFT deployment — several independent consensus groups
on one simulated timeline, a hash-partitioned keyspace, and cross-shard
clients that route every operation to its owning group — and shows the three
things sharding adds over a single group:

1. aggregate throughput grows with the number of groups (constant load per
   group),
2. per-shard metrics expose the partition imbalance under zipfian skew,
3. a logical request whose operations span several shards is split into
   per-shard sub-requests and completes once every group has answered.

Run with:  python examples/sharded_deployment.py
"""

from dataclasses import replace

from repro import DeploymentConfig, DeploymentSpec
from repro.common.config import ExperimentConfig, ProtocolConfig, WorkloadConfig


def base_config(num_clients: int) -> DeploymentConfig:
    return DeploymentConfig(
        protocol="flexi-bft",
        f=1,
        workload=WorkloadConfig(num_clients=num_clients, records=1000),
        protocol_config=ProtocolConfig(batch_size=20, worker_threads=8),
        experiment=ExperimentConfig(warmup_batches=3, measured_batches=15, seed=1),
    )


def scaleout() -> None:
    print("shards | aggregate tx/s | per-shard tx/s           | imbalance | safe")
    print("-" * 74)
    clients_per_shard = 60
    for shards in (1, 2, 4):
        spec = DeploymentSpec(
            base_config(clients_per_shard * shards),
            num_shards=shards, num_clients=clients_per_shard * shards)
        deployment = spec.build()
        result = deployment.run_until_target()
        metrics = result.metrics
        per_shard = "  ".join(f"{m.throughput_tx_s:8.0f}"
                              for m in metrics.shard_metrics)
        print(f"{shards:>6d} | {metrics.aggregate_throughput_tx_s:14.0f} | "
              f"{per_shard:<24s} | {metrics.imbalance:9.3f} | "
              f"{result.consensus_safe}")


def cross_shard_requests() -> None:
    base = base_config(30)
    # Four operations per signed client message: most logical requests now
    # touch several shards and must be merged from per-shard sub-responses.
    base = replace(base, workload=replace(base.workload,
                                          requests_per_client_message=4))
    deployment = DeploymentSpec(base, num_shards=4, num_clients=30).build()
    deployment.run_until_target(target_requests=300)
    submitted = sum(c.stats.submitted for c in deployment.clients)
    multi = sum(c.stats.multi_shard_requests for c in deployment.clients)
    subs = sum(c.stats.sub_requests for c in deployment.clients)
    print(f"\nlogical requests: {submitted}   spanning >1 shard: {multi} "
          f"({100.0 * multi / submitted:.0f}%)   sub-requests issued: {subs}")
    key = "user0"
    print(f"the hottest key {key!r} is owned by shard "
          f"{deployment.shard_of(key)} on every run (hash partitioning)")


def main() -> None:
    print("Flexi-BFT scale-out (f = 1, 60 closed-loop clients per shard):\n")
    scaleout()
    cross_shard_requests()
    print("\nEach group runs its own replicas, network and trusted hosts; the")
    print("router hash-partitions keys, so groups never coordinate and")
    print("aggregate throughput scales with the number of groups.")


if __name__ == "__main__":
    main()
