"""Quickstart: run a BFT protocol on the live asyncio backend.

The simulator answers "what would Flexi-BFT do"; the live backend answers
"what does it do on this machine, right now".  The replica and client code
is identical — only the kernel (a real asyncio event loop) and the transport
(asyncio queues with the configured injected latency) differ — so the rows
below hold *wall-clock* throughput and latency, including the real cost of
every HMAC-SHA256 signature and MAC.

Run with::

    PYTHONPATH=src python examples/live_deployment.py

or, equivalently, straight from the CLI::

    python -m repro live --protocol flexibft
"""

from repro.realtime import run_live_point
from repro.runtime import DeploymentSpec
from repro.runtime.experiments import ExperimentScale, build_config, print_rows

# Small sizing: live runs pay real network latency and real crypto, so a few
# hundred requests complete in well under a second.
SCALE = ExperimentScale(
    name="live-example", f=1, num_clients=12, batch_size=5,
    warmup_batches=2, measured_batches=8, worker_threads=4,
    max_sim_seconds=30.0)


def main() -> None:
    rows = []
    for protocol in ("minbft", "flexi-bft"):
        result = run_live_point(build_config(protocol, SCALE))
        row = {"protocol": protocol, "backend": "live"}
        row.update(result.as_row())
        rows.append(row)
    print_rows("live asyncio backend (wall-clock results)", rows)

    # The same configuration on the simulator, for comparison: identical row
    # schema, so the two backends feed the same analysis paths.
    sim_rows = []
    for protocol in ("minbft", "flexi-bft"):
        spec = DeploymentSpec(build_config(protocol, SCALE))
        result = spec.build().run_until_target()
        row = {"protocol": protocol, "backend": "sim"}
        row.update(result.as_row())
        sim_rows.append(row)
    print_rows("discrete-event simulator (simulated results)", sim_rows)

    # The same spec shape selects the live backend by name — only the
    # ``backend`` field changes between a simulated and a wall-clock build.
    deployment = DeploymentSpec(build_config("pbft", SCALE),
                                backend="live").build()
    try:
        result = deployment.run_until_target(target_requests=40)
        print(f"\npbft live: {result.metrics.completed_requests} requests, "
              f"{result.metrics.throughput_tx_s:.0f} tx/s, "
              f"p50 {result.metrics.p50_latency_ms:.2f} ms, "
              f"consensus_safe={result.consensus_safe}")
    finally:
        deployment.close()


if __name__ == "__main__":
    main()
