"""Crash, restart and rejoin: the recovery subsystem end to end.

Three demonstrations:

1. ``figure_recovery`` — a timed FaultSchedule crashes a replica mid-run and
   restarts it; the table reports the throughput dip and the time until the
   deployment is back above 90% of its pre-crash rate.
2. A manual schedule with a partition: the cut-off replica falls behind,
   and the lag trigger makes it state-transfer back after the heal.
3. The restart-based rollback attack: a byzantine primary power-cycles its
   replica; a volatile counter resets (safety violation, caught by the
   safety monitor), a persistent one resumes (attack defeated).

Run with::

    PYTHONPATH=src python examples/crash_recovery.py
"""

from repro.common.config import (
    DeploymentConfig,
    ExperimentConfig,
    ProtocolConfig,
    WorkloadConfig,
)
from repro.common.types import ms, seconds
from repro.core.attacks import compare_restart_rollback_hardware
from repro.recovery import FaultSchedule, heal_at, partition_at
from repro.runtime import DeploymentSpec, SMALL_SCALE, figure_recovery, print_rows


def recovery_figure() -> None:
    rows = figure_recovery(SMALL_SCALE, protocols=("minbft", "flexi-bft"),
                           crash_s=0.5, restart_s=0.9, end_s=1.8)
    print_rows("Recovery: crash at 0.5s, restart at 0.9s", rows)


def partition_lag_demo() -> None:
    config = DeploymentConfig(
        protocol="flexi-bft", f=1,
        workload=WorkloadConfig(num_clients=12, records=200),
        protocol_config=ProtocolConfig(batch_size=4, worker_threads=4,
                                       checkpoint_interval=20),
        experiment=ExperimentConfig(seed=9))
    schedule = FaultSchedule((
        partition_at((3,), ms(200), name="isolate-3"),
        heal_at(ms(600), name="isolate-3"),
    ))
    deployment = DeploymentSpec(config, fault_schedule=schedule).build()
    deployment.start_clients()
    deployment.sim.run(until=seconds(1.5))
    lagged = deployment.replica(3)
    print("\n== Partition + heal: lag-triggered state transfer ==")
    print(f"replica 3 recoveries: started={lagged.stats.recoveries_started} "
          f"completed={lagged.stats.recoveries_completed}")
    print(f"last executed: {[r.ledger.last_executed for r in deployment.replicas]}")
    print(f"consensus safe: {deployment.safety.consensus_safe}")


def restart_rollback_demo() -> None:
    print("\n== Restart-based rollback attack (Section 6 variant) ==")
    for level, report in compare_restart_rollback_hardware().items():
        outcome = ("SAFETY VIOLATED" if report.safety_violated
                   else "attack defeated")
        print(f"{level:>10} ({report.hardware}): counter reset="
              f"{report.rollback_succeeded}, "
              f"digests at seq 1={report.conflicting_digests_at_seq1} -> {outcome}")


if __name__ == "__main__":
    recovery_figure()
    partition_lag_demo()
    restart_rollback_demo()
