#!/usr/bin/env python3
"""Section 6: rollback attack on trusted counters.

A byzantine MinBFT primary serves transaction T to one honest replica, rolls
its (volatile) trusted counter back, and serves a conflicting transaction T'
to the other honest replica at the same sequence number.  Both client
observations reach f + 1 matching replies, yet the two honest replicas have
executed different transactions at sequence 1 — a consensus-safety violation.
Re-running the attack against persistent hardware (SGX persistent counters or
a TPM) shows the rollback being refused and safety holding.

Run with:  python examples/rollback_attack.py
"""

from repro.common.config import SGX_ENCLAVE_COUNTER, SGX_PERSISTENT_COUNTER, TPM_COUNTER
from repro.core.attacks import run_rollback_attack


def describe(hardware) -> None:
    report = run_rollback_attack(hardware)
    print(f"\n--- trusted hardware: {report.hardware} "
          f"(persistent = {hardware.persistent}) ---")
    print(f"rollback possible                  : {report.rollback_succeeded}")
    print(f"consensus safety violated          : {report.safety_violated}")
    print(f"distinct batches executed at seq 1 : {report.conflicting_digests_at_seq1}")
    print(f"replies for T / for T'             : {report.responses_for_first} / "
          f"{report.responses_for_second}")
    for violation in report.violations:
        print(f"violation: {violation}")


def main() -> None:
    print("Rollback attack on MinBFT (Section 6)")
    describe(SGX_ENCLAVE_COUNTER)
    describe(SGX_PERSISTENT_COUNTER)
    describe(TPM_COUNTER)
    print("\nVolatile enclave counters let the host replay an old counter state")
    print("and equivocate; persistent counters and TPMs refuse, at the price of")
    print("millisecond-scale access latencies (see the Figure 8 benchmark).")


if __name__ == "__main__":
    main()
