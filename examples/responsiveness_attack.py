#!/usr/bin/env python3
"""Section 5 / Figure 2: the responsiveness attack on MinBFT versus Pbft.

A byzantine primary proposes a transaction only to the byzantine replicas and
one honest replica r; the network temporarily delays r's Prepare messages to
the remaining honest replicas D.  In MinBFT (n = 2f + 1) the transaction
commits at r — consensus liveness holds — but the client can never collect the
f + 1 matching replies it needs, and the f replicas in D cannot muster the
f + 1 view-change votes required to replace the primary.  Pbft (n = 3f + 1)
runs the same scenario, replaces the primary, and the client completes.

Run with:  python examples/responsiveness_attack.py
"""

from repro.core.attacks import run_responsiveness_attack


def describe(name: str, f: int = 2) -> None:
    report = run_responsiveness_attack(name, f=f, duration_s=3.0)
    print(f"\n--- {name} (n = {report.n}, f = {report.f}) ---")
    print(f"client received a validated answer : {report.client_completed}")
    print(f"matching replies needed / received : {report.required_responses} / "
          f"{report.required_responses if report.client_completed else report.responses_at_client}")
    print(f"honest replicas that executed      : {report.honest_replicas_executed}")
    print(f"view changes completed             : {report.view_changes_completed}")
    print(f"view-change votes collected        : {report.view_change_votes}")


def main() -> None:
    print("Responsiveness attack (Section 5, Figure 2)")
    describe("minbft")
    describe("pbft")
    print("\nMinBFT commits the transaction but the client is stuck below its")
    print("f+1 reply quorum and the view change never gathers f+1 votes; Pbft's")
    print("larger quorums force enough honest replicas into every decision that")
    print("a view change recovers the system and the client completes.")


if __name__ == "__main__":
    main()
