"""Setuptools shim so the package installs in environments without PEP 660 support."""

from setuptools import setup

setup()
