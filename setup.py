"""Packaging metadata for the FlexiTrust reproduction.

The library is pure python with no runtime dependencies; test tooling
(pytest, hypothesis, pytest-benchmark) is exposed as the ``test`` extra so
CI and developers install exactly what the tier-1 suite runs with.
"""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.dirname(__file__)


def _readme() -> str:
    path = os.path.join(_HERE, "README.md")
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    return ""


def _version() -> str:
    # Single source of truth: repro.__version__.
    with open(os.path.join(_HERE, "src", "repro", "__init__.py"),
              encoding="utf-8") as handle:
        return re.search(r'__version__ = "([^"]+)"', handle.read()).group(1)


setup(
    name="flexitrust-repro",
    version=_version(),
    description=("Reproduction of 'Dissecting BFT Consensus: In Trusted "
                 "Components we Trust!' (EuroSys 2023): ten BFT protocols, "
                 "attack scenarios, figure experiments and sharded scale-out "
                 "deployments on a deterministic simulator"),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "pytest-timeout>=2",
            "hypothesis>=6",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.__main__:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
