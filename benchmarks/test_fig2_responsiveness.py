"""Figure 2 / Section 5: responsiveness attack on MinBFT versus Pbft."""

from repro.core.attacks import run_responsiveness_attack


def test_fig2_minbft_loses_responsiveness(benchmark):
    report = benchmark.pedantic(
        lambda: run_responsiveness_attack("minbft", f=2, duration_s=2.0),
        rounds=1, iterations=1)
    print(f"\nMinBFT: client completed={report.client_completed}, "
          f"honest replicas executed={report.honest_replicas_executed}, "
          f"view changes completed={report.view_changes_completed}")
    assert not report.client_completed
    assert report.honest_replicas_executed == 1
    assert report.view_changes_completed == 0


def test_fig2_pbft_stays_responsive(benchmark):
    report = benchmark.pedantic(
        lambda: run_responsiveness_attack("pbft", f=2, duration_s=2.0),
        rounds=1, iterations=1)
    print(f"\nPbft: client completed={report.client_completed}, "
          f"honest replicas executed={report.honest_replicas_executed}, "
          f"view changes completed={report.view_changes_completed}")
    assert report.client_completed
    assert report.honest_replicas_executed >= report.f + 1
