"""Figure 8: peak throughput versus trusted-hardware access latency."""

from conftest import BENCH_SCALE, throughput_by_protocol

from repro.runtime import figure8_hardware_sweep, print_rows


def test_fig8_hardware_latency_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: figure8_hardware_sweep(BENCH_SCALE), rounds=1, iterations=1)
    print_rows("Figure 8: trusted counter access cost sweep", rows)

    fastest = min(BENCH_SCALE.tc_latencies_ms)
    slowest = max(BENCH_SCALE.tc_latencies_ms)
    fast = throughput_by_protocol(rows, access_cost_ms=fastest)
    slow = throughput_by_protocol(rows, access_cost_ms=slowest)

    # With fast (in-enclave) counters Flexi-ZZ wins comfortably.
    assert fast["flexi-zz"] > fast["minzz"]
    assert fast["flexi-zz"] > fast["minbft"]
    # Slow hardware drags every protocol down...
    for protocol in ("flexi-zz", "minzz", "minbft"):
        assert slow[protocol] < fast[protocol]
    # ...and the protocols converge: a single trusted access per batch is the
    # bottleneck for all of them (Section 9.9's "degrade to similar values").
    values = sorted(slow.values())
    assert values[-1] <= values[0] * 3.0
