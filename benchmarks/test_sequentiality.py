"""Section 7: sequential consensus demonstration and throughput bound."""

from repro.core.attacks import run_sequentiality_demo, sequential_throughput_bound


def test_sequentiality_demo(benchmark):
    report = benchmark(run_sequentiality_demo)
    print(f"\nout-of-order Append rejected: {report.out_of_order_rejected}; "
          f"sequential bound {report.sequential_bound_tx_s:.0f} tx/s vs "
          f"parallel estimate {report.parallel_estimate_tx_s:.0f} tx/s")
    assert report.out_of_order_rejected
    assert report.parallel_speedup > 1.0


def test_throughput_bound_matches_paper_back_of_envelope(benchmark):
    # Section 9.9: at 10 ms access latency, throughput degrades to
    # batch size x 1 s / 10 ms = 10 k tx/s for a batch of 100.
    bound = benchmark(sequential_throughput_bound, 100, 1, 10_000.0)
    assert round(bound) == 10_000
