"""Figure 6(i): throughput/latency of every protocol as offered load grows."""

from conftest import BENCH_SCALE, throughput_by_protocol

from repro.runtime import figure6_throughput_latency, print_rows


def test_fig6_throughput_vs_latency(benchmark):
    rows = benchmark.pedantic(
        lambda: figure6_throughput_latency(BENCH_SCALE), rounds=1, iterations=1)
    print_rows("Figure 6(i): throughput vs latency", rows)
    peak = throughput_by_protocol(rows)

    # The paper's headline ordering (Section 9.4):
    #  - FlexiTrust protocols beat their trust-bft counterparts,
    assert peak["flexi-bft"] > peak["minbft"]
    assert peak["flexi-zz"] > peak["minzz"]
    #  - Pbft beats every 2f+1 trust-bft protocol (sequential consensus and
    #    per-message trusted accesses hurt more than the smaller quorums help),
    assert peak["pbft"] > peak["minbft"]
    assert peak["pbft"] > peak["pbft-ea"]
    assert peak["pbft"] > peak["minzz"]
    #  - among trust-bft protocols, the three-phase Pbft-EA is the slowest
    #    (MinBFT and MinZZ shed one / two phases respectively).
    assert peak["minbft"] > peak["pbft-ea"]
    assert peak["minzz"] > peak["pbft-ea"]
    #  - FlexiTrust protocols at least match Pbft, and Flexi-ZZ leads overall.
    assert peak["flexi-bft"] >= 0.9 * peak["pbft"]
    assert peak["flexi-zz"] >= peak["pbft"]
    assert peak["flexi-zz"] >= max(peak.values()) * 0.999
