#!/usr/bin/env python3
"""Fail when committed perf baselines change outside the declared refresh.

Simulated-row digests are the determinism contract of the perf gate: a
baseline refresh is only legitimate when a PR *names* the scenarios whose
rows it deliberately changed.  This check diffs ``benchmarks/baselines/``
against a base ref and asserts every added, removed or modified
``BENCH_<scenario>[.<scale>].json`` belongs to a scenario listed in
``benchmarks/baselines/REFRESH.txt`` — the allowlist each refreshing PR
updates alongside the baselines themselves.  A drive-by digest change to an
unnamed scenario (the classic "refresh everything until CI is green") fails
here even though ``--update-baseline`` happily wrote the file.

Usage::

    python benchmarks/check_baseline_refresh.py [--base origin/main]

Exit status 0 when the refresh is confined (or there is no refresh at all),
1 otherwise.  Run from anywhere inside the repository.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

BASELINE_DIR = "benchmarks/baselines"
ALLOWLIST = "REFRESH.txt"
_BENCH_RE = re.compile(r"^BENCH_(?P<scenario>.+?)(?:\.(?P<scale>[a-z]+))?\.json$")


def repo_root() -> Path:
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return Path(out.stdout.strip())


def changed_baselines(root: Path, base: str) -> list[str]:
    """Names of baseline files that differ from the merge base with ``base``.

    Diffs the *working tree* (not just HEAD) against the merge base, so the
    check gives the same answer locally before the refresh is committed as
    it does in CI afterwards.
    """
    merge_base = subprocess.run(
        ["git", "merge-base", base, "HEAD"],
        capture_output=True, text=True, cwd=root)
    anchor = merge_base.stdout.strip() if merge_base.returncode == 0 else base
    result = subprocess.run(
        ["git", "diff", "--name-only", anchor, "--", BASELINE_DIR],
        capture_output=True, text=True, cwd=root, check=True)
    return [Path(line).name for line in result.stdout.splitlines() if line]


def allowed_scenarios(root: Path) -> set[str]:
    path = root / BASELINE_DIR / ALLOWLIST
    if not path.exists():
        return set()
    names: set[str] = set()
    for line in path.read_text().splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            names.add(line)
    return names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base", default="origin/main",
                        help="ref the baselines are diffed against "
                             "(default: origin/main)")
    args = parser.parse_args(argv)

    root = repo_root()
    changed = changed_baselines(root, args.base)
    allowed = allowed_scenarios(root)

    offenders: list[str] = []
    for name in changed:
        if name == ALLOWLIST:
            continue
        match = _BENCH_RE.match(name)
        if match is None:
            offenders.append(f"{name} (not a BENCH_<scenario>.json file)")
        elif match.group("scenario") not in allowed:
            offenders.append(f"{name} (scenario '{match.group('scenario')}' "
                             f"not named in {BASELINE_DIR}/{ALLOWLIST})")

    if offenders:
        print("baseline refresh NOT confined to the declared scenarios:")
        for offender in offenders:
            print(f"  - {offender}")
        print(f"declared in {BASELINE_DIR}/{ALLOWLIST}: "
              f"{sorted(allowed) or '(none)'}")
        return 1

    if changed:
        print(f"baseline refresh confined to declared scenarios: "
              f"{sorted(allowed)}")
    else:
        print("no baseline changes against", args.base)
    return 0


if __name__ == "__main__":
    sys.exit(main())
