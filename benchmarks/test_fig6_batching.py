"""Figure 6(iv)/(v): impact of the batch size."""

from conftest import BENCH_SCALE

from repro.runtime import figure6_batching, print_rows


def test_fig6_batching(benchmark):
    rows = benchmark.pedantic(
        lambda: figure6_batching(BENCH_SCALE), rounds=1, iterations=1)
    print_rows("Figure 6(iv)/(v): batching", rows)

    smallest = min(BENCH_SCALE.batch_values)
    largest = max(BENCH_SCALE.batch_values)
    for protocol in BENCH_SCALE.core_protocols:
        small_rows = [r for r in rows
                      if r["protocol"] == protocol and r["batch_size"] == smallest]
        large_rows = [r for r in rows
                      if r["protocol"] == protocol and r["batch_size"] == largest]
        # Larger batches improve throughput for every protocol (Section 9.6)
        # until communication / execution becomes the bottleneck.
        assert large_rows[0]["throughput_tx_s"] > small_rows[0]["throughput_tx_s"]
