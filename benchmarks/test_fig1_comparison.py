"""Figure 1: qualitative comparison of trust-bft and FlexiTrust protocols."""

from repro.core.analysis import figure1_table, format_table


def test_fig1_comparison_table(benchmark):
    rows = benchmark(figure1_table, True)
    print("\n" + format_table(rows))
    by_name = {row.protocol: row for row in rows}
    # FlexiTrust protocols are the only trusted-component protocols that keep
    # bft liveness, support out-of-order consensus and need the trusted
    # component only at the primary.
    for name, row in by_name.items():
        if name in ("Flexi-BFT", "Flexi-ZZ"):
            assert row.bft_liveness and row.out_of_order and row.only_primary_tc
        elif row.trusted_abstraction != "none":
            assert not (row.bft_liveness and row.out_of_order and row.only_primary_tc)
