"""Sharding scale-out: aggregate throughput vs. number of consensus groups.

Extends the paper's per-machine story (Figure 9): because FlexiTrust removes
the sequential trusted counter from the critical path, consensus parallelises
— first across instances inside one group, and here across *groups*.  With a
constant offered load per shard, aggregate throughput must grow monotonically
with the shard count for both a sequential trust-bft protocol (MinBFT) and a
parallel FlexiTrust one (Flexi-BFT), while Flexi-BFT keeps touching trusted
hardware an order of magnitude less often.
"""

from conftest import BENCH_SCALE

from dataclasses import replace

import pytest

from repro.runtime import figure_sharding_scaleout, print_rows

#: The sharded sweep multiplies work by the shard count, so it runs at f = 1
#: with a lighter per-shard load than the single-group benchmarks.
SHARDING_SCALE = replace(BENCH_SCALE, name="bench-sharded", f=1, num_clients=60)

SHARD_COUNTS = (1, 2, 4)


def test_sharding_scaleout(benchmark):
    rows = benchmark.pedantic(
        lambda: figure_sharding_scaleout(SHARDING_SCALE, shard_counts=SHARD_COUNTS),
        rounds=1, iterations=1)
    print_rows("Sharding scale-out: throughput vs. number of groups", rows)

    for protocol in ("minbft", "flexi-bft"):
        series = [r for r in rows if r["protocol"] == protocol]
        assert [r["shards"] for r in series] == list(SHARD_COUNTS)

        # Every point ran safely, reports per-shard metrics and a roll-up.
        for row in series:
            assert row["consensus_safe"]
            per_shard = [row[f"shard{s}_tx_s"] for s in range(row["shards"])]
            assert all(tx > 0 for tx in per_shard)
            assert row["aggregate_throughput_tx_s"] == pytest.approx(
                sum(per_shard), abs=0.5 * row["shards"])
            # The hash partition keeps the groups reasonably balanced even
            # under the zipfian key skew.
            assert 1.0 <= row["imbalance"] < 2.0

        # Scale-out: aggregate throughput grows monotonically with the
        # number of groups.
        aggregate = [r["aggregate_throughput_tx_s"] for r in series]
        assert aggregate == sorted(aggregate)
        # And meaningfully: 4 groups deliver well over twice one group.
        assert aggregate[-1] > 2.0 * aggregate[0]

    # FlexiTrust's whole point: same scale-out, far fewer trusted accesses.
    for shards in SHARD_COUNTS:
        minbft = next(r for r in rows
                      if r["protocol"] == "minbft" and r["shards"] == shards)
        flexi = next(r for r in rows
                     if r["protocol"] == "flexi-bft" and r["shards"] == shards)
        assert flexi["trusted_accesses"] < minbft["trusted_accesses"] / 2
