"""Recovery experiment: crash → restart → state transfer → rejoin.

Beyond the paper's figures: a timed :class:`~repro.recovery.schedule.FaultSchedule`
crashes one replica mid-run and restarts it; the restarted replica replays its
durable store, fetches the missing suffix from peers and rejoins consensus.
The table reports dip depth and time-to-recover per protocol and per
trusted-hardware persistence level.
"""

from repro.runtime import ExperimentScale, figure_recovery, print_rows

#: Smaller than BENCH_SCALE: the experiment runs a fixed simulated timeline
#: (crash at 0.4s, restart at 0.7s) rather than a completion target, so the
#: client population is what controls the wall-clock cost.
RECOVERY_SCALE = ExperimentScale(
    name="recovery-bench", f=1, num_clients=24, batch_size=10,
    warmup_batches=2, measured_batches=8, worker_threads=4,
    max_sim_seconds=3.0)


def test_figure_recovery_dip_and_rejoin(benchmark):
    rows = benchmark.pedantic(
        lambda: figure_recovery(RECOVERY_SCALE,
                                protocols=("minbft", "flexi-bft"),
                                crash_s=0.4, restart_s=0.7, end_s=1.4),
        rounds=1, iterations=1)
    print_rows("Recovery: dip depth and time-to-recover", rows)
    assert len(rows) == 4
    for row in rows:
        # The crashed replica completed state transfer and rejoined, and its
        # replayed history agreed with the honest majority.
        assert row["recovered"]
        assert row["consensus_safe"]
        # The deployment itself climbed back to >= 90% of its pre-crash rate.
        assert row["time_to_recover_s"] is not None
        assert row["post_recovery_tx_s"] >= 0.9 * row["pre_crash_tx_s"]

    # The persistence bit affects what survives a restart, not failure-free
    # performance: both hardware levels share one access latency.
    by_level = {(row["protocol"], row["persistent"]): row for row in rows}
    for protocol in ("minbft", "flexi-bft"):
        assert (by_level[(protocol, False)]["throughput_tx_s"]
                == by_level[(protocol, True)]["throughput_tx_s"])
