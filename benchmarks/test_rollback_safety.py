"""Section 6: rollback attack on volatile versus persistent trusted hardware."""

from repro.common.config import SGX_ENCLAVE_COUNTER, SGX_PERSISTENT_COUNTER
from repro.core.attacks import run_rollback_attack


def test_rollback_on_volatile_hardware_breaks_safety(benchmark):
    report = benchmark.pedantic(
        lambda: run_rollback_attack(SGX_ENCLAVE_COUNTER), rounds=1, iterations=1)
    print(f"\nvolatile ({report.hardware}): rollback={report.rollback_succeeded}, "
          f"safety violated={report.safety_violated}, "
          f"conflicting digests at seq 1={report.conflicting_digests_at_seq1}")
    assert report.rollback_succeeded
    assert report.safety_violated
    assert report.conflicting_digests_at_seq1 == 2


def test_rollback_on_persistent_hardware_is_impossible(benchmark):
    report = benchmark.pedantic(
        lambda: run_rollback_attack(SGX_PERSISTENT_COUNTER), rounds=1, iterations=1)
    print(f"\npersistent ({report.hardware}): rollback={report.rollback_succeeded}, "
          f"safety violated={report.safety_violated}")
    assert not report.rollback_succeeded
    assert not report.safety_violated
