"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation at ``BENCH_SCALE`` (a laptop-sized configuration).  The same
experiment functions accept ``repro.runtime.PAPER_SCALE`` for runs closer to
the paper's deployment; see EXPERIMENTS.md for the recorded comparison.
"""

from __future__ import annotations

import pytest

from repro.runtime import ExperimentScale

#: Scale used by the benchmark suite: small enough for CI, large enough that
#: the qualitative shapes (who wins, where the crossovers are) are visible.
BENCH_SCALE = ExperimentScale(
    name="bench",
    f=2,
    f_values=(1, 2),
    num_clients=240,
    client_values=(60, 240),
    batch_size=20,
    batch_values=(5, 20, 80),
    warmup_batches=3,
    measured_batches=12,
    regions_max=4,
    wan_f=1,
    tc_latencies_ms=(0.025, 2.5, 10.0),
    protocols=("pbft", "pbft-ea", "minbft", "minzz", "flexi-bft", "flexi-zz"),
    core_protocols=("pbft", "minbft", "minzz", "flexi-bft", "flexi-zz"),
    worker_threads=8,
    max_sim_seconds=40.0,
)


def throughput_by_protocol(rows: list[dict], key: str = "throughput_tx_s",
                           **filters) -> dict[str, float]:
    """Index rows by protocol after applying equality filters on columns."""
    result: dict[str, float] = {}
    for row in rows:
        if all(row.get(k) == v for k, v in filters.items()):
            result[row["protocol"]] = max(result.get(row["protocol"], 0.0), row[key])
    return result


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE
