"""Figure 6(ii)/(iii): scalability as the number of replicas grows."""

from conftest import BENCH_SCALE, throughput_by_protocol

from repro.runtime import figure6_scalability, print_rows


def test_fig6_scalability(benchmark):
    rows = benchmark.pedantic(
        lambda: figure6_scalability(BENCH_SCALE), rounds=1, iterations=1)
    print_rows("Figure 6(ii)/(iii): scalability", rows)

    smallest_f = min(BENCH_SCALE.f_values)
    largest_f = max(BENCH_SCALE.f_values)
    small = throughput_by_protocol(rows, f=smallest_f)
    large = throughput_by_protocol(rows, f=largest_f)

    # Growing the replica count costs the quadratic-communication 3f+1
    # protocols throughput (Section 9.5); the sequential 2f+1 protocols are
    # latency-bound rather than message-bound, so their drop is smaller —
    # exactly the asymmetry the paper reports.
    for protocol in ("pbft", "flexi-bft", "flexi-zz"):
        assert large[protocol] <= small[protocol] * 1.05
    # FlexiTrust still beats its trust-bft counterparts at the larger scale.
    assert large["flexi-bft"] > large["minbft"]
    assert large["flexi-zz"] > large["minzz"]
    # Latency grows (or at least does not shrink) with the replica count.
    lat_small = throughput_by_protocol(rows, key="mean_latency_ms", f=smallest_f)
    lat_large = throughput_by_protocol(rows, key="mean_latency_ms", f=largest_f)
    assert lat_large["pbft"] >= lat_small["pbft"] * 0.9
