"""Figure 5: cost of grafting trusted counters / signature attestations onto Pbft."""

from conftest import BENCH_SCALE

from repro.runtime import figure5_trusted_counter_costs, print_rows


def test_fig5_trusted_counter_costs(benchmark):
    rows = benchmark.pedantic(
        lambda: figure5_trusted_counter_costs(BENCH_SCALE), rounds=1, iterations=1)
    print_rows("Figure 5: Pbft + trusted counter / signature attestation", rows)
    by_bar = {row["bar"]: row["throughput_tx_s"] for row in rows}
    # Bar [a] is plain Pbft; every instrumented bar adds overhead (within a
    # small measurement tolerance), and the heaviest configuration [d]/[g]
    # (TC + signature attestation in all phases) loses a clearly measurable
    # fraction of bar [a]'s throughput.
    tolerance = 1.03
    assert by_bar["c"] <= tolerance * by_bar["a"]
    assert by_bar["d"] <= by_bar["a"]
    assert by_bar["d"] <= tolerance * by_bar["b"]
    assert by_bar["g"] <= tolerance * by_bar["a"]
    assert by_bar["d"] < 0.95 * by_bar["a"]
    # Extending trusted use to non-primary replicas does not change the
    # picture: the primary is already the bottleneck (bars e-g vs b-d).
    assert by_bar["g"] <= 1.05 * by_bar["d"]
