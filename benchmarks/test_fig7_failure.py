"""Figure 7: impact of a single non-primary replica failure."""

from conftest import BENCH_SCALE

from repro.runtime import build_config, figure7_failure, print_rows, run_point


def test_fig7_single_replica_failure(benchmark):
    rows = benchmark.pedantic(
        lambda: figure7_failure(BENCH_SCALE, protocols=("flexi-zz", "minzz", "zyzzyva"),
                                f_values=(1,)),
        rounds=1, iterations=1)
    print_rows("Figure 7: one non-primary replica crashed", rows)
    by_protocol = {row["protocol"]: row for row in rows}

    # Flexi-ZZ needs only n - f matching replies, so it stays on the fast path
    # and keeps both its throughput and latency; MinZZ and Zyzzyva wait for
    # replies from *all* replicas and fall back to their slow path.
    assert by_protocol["flexi-zz"]["mean_latency_ms"] < by_protocol["minzz"]["mean_latency_ms"]
    assert by_protocol["flexi-zz"]["mean_latency_ms"] < by_protocol["zyzzyva"]["mean_latency_ms"]
    assert by_protocol["flexi-zz"]["throughput_tx_s"] > by_protocol["minzz"]["throughput_tx_s"]
    assert by_protocol["flexi-zz"]["throughput_tx_s"] > by_protocol["zyzzyva"]["throughput_tx_s"]


def test_fig7_flexi_zz_failure_free_vs_failure(benchmark):
    def run_pair():
        healthy = run_point(build_config("flexi-zz", BENCH_SCALE))
        n = 3 * BENCH_SCALE.f + 1
        crashed = run_point(build_config("flexi-zz", BENCH_SCALE, crashed=(n - 1,)))
        return healthy, crashed

    healthy, crashed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"\nFlexi-ZZ throughput: failure-free {healthy.metrics.throughput_tx_s:.0f} tx/s, "
          f"one crash {crashed.metrics.throughput_tx_s:.0f} tx/s")
    # The paper: Flexi-ZZ's performance does not degrade under one failure.
    assert crashed.metrics.throughput_tx_s > 0.6 * healthy.metrics.throughput_tx_s
