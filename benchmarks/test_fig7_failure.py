"""Figure 7: impact of a single non-primary replica failure."""

from conftest import BENCH_SCALE

from repro.common.types import seconds
from repro.protocols.registry import get_protocol
from repro.recovery import FaultSchedule, crash_at, recovery_summary, restart_at
from repro.runtime import (
    DeploymentSpec,
    ExperimentScale,
    build_config,
    figure7_failure,
    print_rows,
    run_point,
)


def test_fig7_single_replica_failure(benchmark):
    rows = benchmark.pedantic(
        lambda: figure7_failure(BENCH_SCALE, protocols=("flexi-zz", "minzz", "zyzzyva"),
                                f_values=(1,)),
        rounds=1, iterations=1)
    print_rows("Figure 7: one non-primary replica crashed", rows)
    by_protocol = {row["protocol"]: row for row in rows}

    # Flexi-ZZ needs only n - f matching replies, so it stays on the fast path
    # and keeps both its throughput and latency; MinZZ and Zyzzyva wait for
    # replies from *all* replicas and fall back to their slow path.
    assert by_protocol["flexi-zz"]["mean_latency_ms"] < by_protocol["minzz"]["mean_latency_ms"]
    assert by_protocol["flexi-zz"]["mean_latency_ms"] < by_protocol["zyzzyva"]["mean_latency_ms"]
    assert by_protocol["flexi-zz"]["throughput_tx_s"] > by_protocol["minzz"]["throughput_tx_s"]
    assert by_protocol["flexi-zz"]["throughput_tx_s"] > by_protocol["zyzzyva"]["throughput_tx_s"]


def test_fig7_flexi_zz_failure_free_vs_failure(benchmark):
    def run_pair():
        healthy = run_point(build_config("flexi-zz", BENCH_SCALE))
        n = 3 * BENCH_SCALE.f + 1
        crashed = run_point(build_config("flexi-zz", BENCH_SCALE, crashed=(n - 1,)))
        return healthy, crashed

    healthy, crashed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"\nFlexi-ZZ throughput: failure-free {healthy.metrics.throughput_tx_s:.0f} tx/s, "
          f"one crash {crashed.metrics.throughput_tx_s:.0f} tx/s")
    # The paper: Flexi-ZZ's performance does not degrade under one failure.
    assert crashed.metrics.throughput_tx_s > 0.6 * healthy.metrics.throughput_tx_s


def test_fig7_crash_restart_recovers_within_10pct(benchmark):
    """Figure 7 extended with a crash → restart point.

    MinZZ clients wait for replies from *all* replicas, so crashing one
    collapses throughput onto the slow path; once the replica restarts,
    state-transfers from its peers and rejoins, throughput must climb back
    to within 10% of the pre-crash rate.
    """
    scale = ExperimentScale(
        name="fig7-restart", f=1, num_clients=24, batch_size=10,
        warmup_batches=2, measured_batches=8, worker_threads=4,
        max_sim_seconds=3.0)
    crash_us, restart_us, end_us = seconds(0.4), seconds(0.8), seconds(1.8)

    def run():
        config = build_config("minzz", scale)
        n = get_protocol("minzz").replicas(scale.f)
        schedule = FaultSchedule((crash_at(n - 1, crash_us),
                                  restart_at(n - 1, restart_us)))
        deployment = DeploymentSpec(config, fault_schedule=schedule).build()
        deployment.start_clients()
        deployment.sim.run(until=end_us)
        return deployment

    deployment = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = recovery_summary(deployment.metrics.completions, crash_us,
                               restart_us, end_us, warmup_us=seconds(0.1))
    rejoined = deployment.replica(deployment.n - 1)
    print(f"\nMinZZ crash/restart: pre {summary.pre_crash_tx_s:.0f} tx/s, "
          f"dip {summary.dip_tx_s:.0f} tx/s, post {summary.post_recovery_tx_s:.0f} tx/s, "
          f"time-to-recover {summary.time_to_recover_s}s")
    assert rejoined.stats.recoveries_completed >= 1
    assert deployment.safety.consensus_safe
    # The crash actually hurt (all-reply fast path lost) ...
    assert summary.dip_fraction > 0.5
    # ... and the rejoin restored throughput to within 10% of pre-crash.
    assert summary.recovered
    assert summary.post_recovery_tx_s >= 0.9 * summary.pre_crash_tx_s
