"""Observability overhead gate: tracing must be cheap on and free off.

Two claims, each load-bearing for the production observability layer:

* **Free when off** — the trace hooks compile down to one attribute load
  plus one ``is None`` test, so a deployment built without an
  ``ObservabilityConfig`` produces *byte-identical* result rows (and hence
  identical perf digests) to a pre-observability build.  The
  ``obsv_overhead`` perf scenario pins this deterministically
  (``rows_match``); here we also re-run it twice and require identical
  digests.

* **Cheap when on** — with the ring buffer recording every message and the
  health collector snapshotting every replica, wall-clock overhead stays
  in the noise.  The paper target is <= 5%; the CI gate asserts a looser
  25% bound (shared-runner noise) while printing the measured ratio so the
  trend is visible in the logs.
"""

from __future__ import annotations

import time

from repro.obsv import ObservabilityConfig
from repro.perf import run_scenario
from repro.perf.scenarios import _OBSV_EXPERIMENT
from repro.runtime import DeploymentSpec
from repro.runtime.experiments import build_config

#: alternating A/B pairs; the per-mode minimum is compared, so one noisy
#: neighbour burst cannot fail (or pass) the gate on its own.  Five pairs
#: (not three) because each timed run is only ~20 ms: the per-mode minimum
#: needs that many samples to converge on shared runners.
_PAIRS = 5

#: CI-safe ceiling for traced/untraced wall-clock; the real signal printed
#: alongside is typically a few percent.
_MAX_OVERHEAD_RATIO = 1.25


def _timed_run(observe):
    config = build_config("flexi-bft", _OBSV_EXPERIMENT)
    deployment = DeploymentSpec(config, observe=observe).build()
    try:
        started = time.perf_counter()
        result = deployment.run_until_target()
        elapsed = time.perf_counter() - started
    finally:
        deployment.close()
    assert result.consensus_safe and result.rsm_safe
    return elapsed


def test_scenario_rows_are_deterministic_and_matched(benchmark):
    first = benchmark.pedantic(
        lambda: run_scenario("obsv_overhead", "smoke",
                             calibration_seconds=1.0),
        rounds=1, iterations=1)
    second = run_scenario("obsv_overhead", "smoke", calibration_seconds=1.0)
    assert first.metrics_digest == second.metrics_digest

    summary = next(row for row in first.rows if row["mode"] == "summary")
    # Traced row (minus health_ columns) byte-identical to the untraced row.
    assert summary["rows_match"] is True
    assert summary["trace_events"] > 0
    assert summary["trace_dropped"] == 0
    # The ring saw the whole run: sends were recorded for every message.
    assert summary["count_msg_send"] > 0
    assert summary["count_kernel_run"] == 1
    assert summary["count_kernel_stop"] == 1
    # Causal tracing reconstructed request lifecycles: every completed
    # request yields a complete client→reply span, and the four-phase
    # latency decomposition is present for each reconstructed phase.
    assert summary["span_requests"] > 0
    assert summary["span_complete"] > 0
    assert summary["span_completeness"] >= 0.6  # closed-loop tail in flight
    for phase in ("network", "queueing", "crypto", "execution", "total"):
        assert summary[f"span_{phase}_p50_us"] >= 0.0
        assert (summary[f"span_{phase}_p99_us"]
                >= summary[f"span_{phase}_p50_us"])


def test_traced_wall_clock_overhead_is_bounded():
    observe = ObservabilityConfig(trace=True, collect_health=True)
    untraced, traced = [], []
    for _ in range(_PAIRS):
        untraced.append(_timed_run(None))
        traced.append(_timed_run(observe))
    ratio = min(traced) / min(untraced)
    print(f"\nobsv overhead: untraced {min(untraced):.4f}s, "
          f"traced {min(traced):.4f}s, ratio {ratio:.3f} "
          f"(gate {_MAX_OVERHEAD_RATIO:.2f})")
    assert ratio <= _MAX_OVERHEAD_RATIO, (
        f"tracing overhead ratio {ratio:.3f} exceeds "
        f"{_MAX_OVERHEAD_RATIO:.2f}")
