"""Figure 6(vi)/(vii): wide-area replication across the paper's regions."""

from conftest import BENCH_SCALE

from repro.runtime import figure6_wan, print_rows


def test_fig6_wan(benchmark):
    rows = benchmark.pedantic(
        lambda: figure6_wan(BENCH_SCALE, protocols=("pbft", "minbft", "flexi-bft",
                                                    "flexi-zz")),
        rounds=1, iterations=1)
    print_rows("Figure 6(vi)/(vii): regions", rows)

    for protocol in ("pbft", "minbft", "flexi-bft", "flexi-zz"):
        per_region = {r["regions"]: r for r in rows if r["protocol"] == protocol}
        # Latency grows for 3f+1 protocols once replicas leave the single
        # region (their 2f+1 quorums must include a remote replica); 2f+1
        # protocols with f=1 can still form an f+1 quorum locally.
        if protocol in ("pbft", "flexi-bft", "flexi-zz"):
            assert per_region[2]["mean_latency_ms"] > per_region[1]["mean_latency_ms"]
        # ...but quorum-based protocols do not keep degrading with every added
        # region: the last step (one more far region) changes latency by far
        # less than the first WAN step did.
        first_step = (per_region[2]["mean_latency_ms"]
                      - per_region[1]["mean_latency_ms"])
        last_step = abs(per_region[max(per_region)]["mean_latency_ms"]
                        - per_region[max(per_region) - 1]["mean_latency_ms"])
        assert last_step < max(first_step, 1.0) * 2.5
        # Every configuration keeps committing safely.
        assert all(r["consensus_safe"] for r in per_region.values())
