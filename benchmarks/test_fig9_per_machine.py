"""Figure 9: throughput per machine (total throughput / number of replicas)."""

from conftest import BENCH_SCALE

from repro.runtime import figure9_throughput_per_machine, print_rows


def test_fig9_throughput_per_machine(benchmark):
    rows = benchmark.pedantic(
        lambda: figure9_throughput_per_machine(BENCH_SCALE), rounds=1, iterations=1)
    print_rows("Figure 9: throughput per machine", rows)

    for f in BENCH_SCALE.f_values:
        flexi = next(r for r in rows if r["protocol"] == "flexi-zz" and r["f"] == f)
        minzz = next(r for r in rows if r["protocol"] == "minzz" and r["f"] == f)
        # Despite deploying 3f+1 instead of 2f+1 replicas, Flexi-ZZ delivers
        # more throughput per machine than MinZZ (Section 9.10).
        assert flexi["throughput_per_machine"] > minzz["throughput_per_machine"]

    # Per-machine throughput decreases as the deployment grows.
    for protocol in ("flexi-zz", "minzz"):
        series = [r["throughput_per_machine"] for r in rows
                  if r["protocol"] == protocol]
        assert series == sorted(series, reverse=True)
